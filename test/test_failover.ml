(* Warm failover tests, bottom-up: the offset-addressed journal tailer and
   its record-size cap, the verified context-snapshot container and its
   crash failpoints, the warm-boot record codec — and the acceptance
   harnesses at the top of the stack: a real primary/follower pair of
   xsact-serve children driven over HTTP, the primary killed with SIGKILL
   mid-mutation, the follower promoted and required to serve every acked
   session byte-identically; plus clean-shutdown stop-drain, warm-boot
   snapshot loading, cross-restart intern rewarming, self-promotion on
   loss of the primary, and replay-divergence detection + healing. *)

module Journal = Xsact_persist.Journal
module Snapshot = Xsact_persist.Snapshot
module Failpoint = Xsact_util.Failpoint
module Http = Xsact_server.Http
module Json = Xsact_server.Json
module Warmboot = Xsact_server.Warmboot

let check = Alcotest.check

let member_exn name body =
  match Json.of_string body with
  | Ok j -> (
    match Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "no field %S in %s" name body)
  | Error e -> Alcotest.failf "bad response JSON %s: %s" body e

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "xsact_failover_%d_%d" (Unix.getpid ()) !counter)
    in
    let _ = Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) in
    dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> -1

(* ---- Journal tailer: offset-addressed reads ------------------------------- *)

let test_tailer () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "j" in
  let j = Journal.open_append ~fsync:Journal.Never path in
  List.iter (Journal.append j) [ "alpha"; "beta" ];
  Journal.close j;
  let r = Journal.read_from ~offset:0 path in
  check Alcotest.(list string) "both records" [ "alpha"; "beta" ] r.Journal.records;
  check Alcotest.bool "clean tail" false r.Journal.torn;
  check Alcotest.int "cursor arithmetic"
    ((2 * Journal.header_bytes) + String.length "alpha" + String.length "beta")
    r.Journal.next_offset;
  check Alcotest.int "cursor = file size" (file_size path) r.Journal.next_offset;
  (* resume from the cursor: only what was appended since *)
  let j = Journal.open_append ~fsync:Journal.Never path in
  Journal.append j "gamma";
  Journal.close j;
  let r2 = Journal.read_from ~offset:r.Journal.next_offset path in
  check Alcotest.(list string) "resumed read" [ "gamma" ] r2.Journal.records;
  (* a mid-append tail (header promises more than is there) is NOT torn:
     the tailer must poll again from the same cursor, not resync *)
  let full = read_file path in
  write_file path (full ^ "\x0a\x00\x00\x00\x00\x00\x00\x00par");
  let r3 = Journal.read_from ~offset:r2.Journal.next_offset path in
  check Alcotest.(list string) "incomplete: nothing yet" [] r3.Journal.records;
  check Alcotest.bool "incomplete: not torn" false r3.Journal.torn;
  check Alcotest.int "incomplete: cursor parked" r2.Journal.next_offset
    r3.Journal.next_offset;
  (* a complete record with a bad CRC IS torn: the primary must resync *)
  let buf = Buffer.create 32 in
  Journal.add_record buf "delta";
  let bad = Bytes.of_string (Buffer.contents buf) in
  Bytes.set bad 4 (Char.chr (Char.code (Bytes.get bad 4) lxor 1));
  write_file path (full ^ Bytes.to_string bad);
  let r4 = Journal.read_from ~offset:r2.Journal.next_offset path in
  check Alcotest.bool "bad CRC: torn" true r4.Journal.torn;
  check Alcotest.(list string) "bad CRC: nothing served" [] r4.Journal.records;
  (* a missing file reads as empty, cursor 0 *)
  let r5 = Journal.read_from ~offset:0 (Filename.concat dir "nope") in
  check Alcotest.(list string) "missing = empty" [] r5.Journal.records;
  check Alcotest.bool "missing: not torn" false r5.Journal.torn

(* The read-side record-size cap: a corrupt length prefix larger than the
   cap is a torn tail, never an allocation attempt. *)
let test_record_cap () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "j" in
  let j = Journal.open_append ~fsync:Journal.Never path in
  List.iter (Journal.append j) [ "ok1"; "ok2" ];
  Journal.close j;
  let good = read_file path in
  (* forge a header claiming a payload just past the default cap — small
     enough to be "plausible" to the 64 MiB write-side sanity bound, so
     only the read-side cap stands between the parser and the allocation *)
  let header = Bytes.create Journal.header_bytes in
  Bytes.set_int32_le header 0
    (Int32.of_int (Journal.default_max_record_bytes + 1));
  Bytes.set_int32_le header 4 0l;
  write_file path (good ^ Bytes.to_string header ^ String.make 64 'x');
  let r = Journal.read_from ~offset:0 path in
  check Alcotest.(list string) "good prefix survives" [ "ok1"; "ok2" ]
    r.Journal.records;
  check Alcotest.bool "forged length = torn" true r.Journal.torn;
  check Alcotest.int "cursor stops before the forgery" (String.length good)
    r.Journal.next_offset;
  (* the cap is configurable: a record the default happily reads is torn
     under a smaller cap *)
  let r = Journal.read_from ~max_record_bytes:2 ~offset:0 path in
  check Alcotest.(list string) "small cap rejects 3-byte payloads" []
    r.Journal.records;
  check Alcotest.bool "small cap: torn" true r.Journal.torn;
  (* the batch reader honors the same cap *)
  let r = Journal.read ~repair:false path in
  check Alcotest.(list string) "batch read: good prefix" [ "ok1"; "ok2" ]
    r.Journal.payloads;
  check Alcotest.int "batch read: forgery counted" 1 r.Journal.truncated_records

(* ---- Context-snapshot container ------------------------------------------- *)

let test_ctxsnap_roundtrip () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "contexts" in
  let records = [ "plain"; ""; "bin\x00\xff\nwith newline and nul" ] in
  Snapshot.write path records;
  let r = Snapshot.read path in
  check Alcotest.bool "valid" true r.Snapshot.valid;
  check Alcotest.(list string) "records round-trip" records r.Snapshot.records;
  (* missing file: invalid, empty — the caller cold-boots *)
  let r = Snapshot.read (Filename.concat dir "nope") in
  check Alcotest.bool "missing = invalid" false r.Snapshot.valid;
  check Alcotest.(list string) "missing = empty" [] r.Snapshot.records;
  (* any truncation invalidates the whole file — all-or-nothing *)
  let full = read_file path in
  write_file path (String.sub full 0 (String.length full - 1));
  let r = Snapshot.read path in
  check Alcotest.bool "truncated = invalid" false r.Snapshot.valid;
  check Alcotest.(list string) "truncated = nothing" [] r.Snapshot.records;
  (* one corrupt byte mid-body: CRC catches it *)
  let bad = Bytes.of_string full in
  let mid = String.length full / 2 in
  Bytes.set bad mid (Char.chr (Char.code (Bytes.get bad mid) lxor 0x20));
  write_file path (Bytes.to_string bad);
  let r = Snapshot.read path in
  check Alcotest.bool "corrupt = invalid" false r.Snapshot.valid

let test_ctxsnap_failpoints () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "contexts" in
  let old = [ "the"; "previous"; "snapshot" ] in
  Snapshot.write path old;
  (* a write torn between body and trailer never clobbers the last valid
     snapshot — tmp + atomic rename *)
  Failpoint.reset ();
  Failpoint.enable "persist.ctxsnap.tear" Failpoint.Fail;
  (match Snapshot.write path [ "new" ] with
  | () -> Alcotest.fail "tear failpoint did not fire"
  | exception Failpoint.Injected _ -> ());
  Failpoint.reset ();
  let r = Snapshot.read path in
  check Alcotest.bool "old snapshot survives a torn write" true
    r.Snapshot.valid;
  check Alcotest.(list string) "old records intact" old r.Snapshot.records;
  (* same for a crash just before the rename *)
  Failpoint.enable "persist.ctxsnap.rename" Failpoint.Fail;
  (match Snapshot.write path [ "newer" ] with
  | () -> Alcotest.fail "rename failpoint did not fire"
  | exception Failpoint.Injected _ -> ());
  Failpoint.reset ();
  let r = Snapshot.read path in
  check Alcotest.bool "old snapshot survives a pre-rename crash" true
    r.Snapshot.valid;
  check Alcotest.(list string) "old records still intact" old
    r.Snapshot.records

(* ---- Warm-boot record codec ----------------------------------------------- *)

let mk_profile label =
  let f e a v =
    { Feature.ftype = { Feature.entity = e; attribute = a }; value = v }
  in
  Result_profile.make ~label
    ~populations:[ ("camera", 3); ("lens", 2) ]
    [
      (f "camera" "zoom" "10x", 2);
      (f "camera" "zoom" "4x", 1);
      (f "camera" "price" "cheap", 3);
      (f "lens" "mount" "EF", 2);
    ]

let test_warmboot_codec () =
  (* a context record: binary blob (newlines, nuls) after the JSON header *)
  let ctx =
    Warmboot.Ctx
      {
        Warmboot.x_key = "dataset=product-reviews&q=gps";
        x_profiles = [| mk_profile "Alpha \"quoted\""; mk_profile "Beta\n" |];
        x_blob = "\x00\x01\x02\nBLOB\xff\xfe\x00tail";
      }
  in
  (match Warmboot.decode (Warmboot.encode ctx) with
  | Ok (Warmboot.Ctx c) ->
    check Alcotest.string "key" "dataset=product-reviews&q=gps"
      c.Warmboot.x_key;
    check Alcotest.string "blob byte-identical" "\x00\x01\x02\nBLOB\xff\xfe\x00tail"
      c.Warmboot.x_blob;
    check Alcotest.int "profile count" 2 (Array.length c.Warmboot.x_profiles);
    check Alcotest.bool "profiles structurally equal" true
      (c.Warmboot.x_profiles
      = [| mk_profile "Alpha \"quoted\""; mk_profile "Beta\n" |]);
    check Alcotest.string "re-encode is stable" (Warmboot.encode ctx)
      (Warmboot.encode (Warmboot.Ctx c))
  | Ok _ -> Alcotest.fail "decoded to the wrong record kind"
  | Error e -> Alcotest.failf "ctx decode failed: %s" e);
  (* a session record *)
  let sess =
    Warmboot.Sess
      {
        Warmboot.z_id = "s7";
        z_ctx = "dataset=product-reviews&q=gps";
        z_bound = 6;
        z_runs = 3;
        z_dfss = [| [| 2; 1; 0 |]; [| 3 |]; [||] |];
      }
  in
  (match Warmboot.decode (Warmboot.encode sess) with
  | Ok (Warmboot.Sess s) ->
    check Alcotest.string "id" "s7" s.Warmboot.z_id;
    check Alcotest.string "ctx key" "dataset=product-reviews&q=gps"
      s.Warmboot.z_ctx;
    check Alcotest.int "bound" 6 s.Warmboot.z_bound;
    check Alcotest.int "runs" 3 s.Warmboot.z_runs;
    check Alcotest.bool "q-vectors equal" true
      (s.Warmboot.z_dfss = [| [| 2; 1; 0 |]; [| 3 |]; [||] |])
  | Ok _ -> Alcotest.fail "decoded to the wrong record kind"
  | Error e -> Alcotest.failf "sess decode failed: %s" e);
  (* garbage is a shape error, not an exception *)
  List.iter
    (fun s ->
      match Warmboot.decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "decoded garbage %S" s)
    [ ""; "not json"; "{}"; {|{"k":"wat"}|}; {|{"k":"sess","id":3}|} ]

(* ---- The child harness ---------------------------------------------------- *)

let serve_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "xsact_serve.exe"

type child = { pid : int; port : int; out_fd : Unix.file_descr }

(* Start a real xsact-serve child and parse its port off stdout. [env_extra]
   arms failpoints in the child only (XSACT_FAILPOINTS=...); [port] pins
   the listen port (0, the default, picks an ephemeral one). *)
let start_child ?(env_extra = []) ?(port = 0) ~state_dir args =
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let argv =
    Array.of_list
      ([ serve_exe; "--port"; string_of_int port; "--dataset";
         "product-reviews"; "--state-dir"; state_dir ]
      @ args)
  in
  let env = Array.append (Unix.environment ()) (Array.of_list env_extra) in
  let pid =
    Unix.create_process_env serve_exe argv env Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let parse_port s =
    let marker = "http://127.0.0.1:" in
    let mlen = String.length marker in
    let rec find i =
      if i + mlen > String.length s then None
      else if String.sub s i mlen = marker then Some (i + mlen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
      let stop = ref start in
      while
        !stop < String.length s
        && match s.[!stop] with '0' .. '9' -> true | _ -> false
      do
        incr stop
      done;
      if !stop > start then
        int_of_string_opt (String.sub s start (!stop - start))
      else None
  in
  let buf = Buffer.create 256 in
  let deadline = Unix.gettimeofday () +. 30. in
  let got = ref None in
  let chunk = Bytes.create 4096 in
  while !got = None && Unix.gettimeofday () < deadline do
    match Unix.select [ out_r ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ ->
      let n = Unix.read out_r chunk 0 (Bytes.length chunk) in
      if n = 0 then (
        Unix.kill pid Sys.sigkill;
        Alcotest.failf "child exited before listening: %s"
          (Buffer.contents buf))
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        got := parse_port (Buffer.contents buf)
      end
  done;
  match !got with
  | None ->
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    Alcotest.failf "no listening line from child: %s" (Buffer.contents buf)
  | Some port -> { pid; port; out_fd = out_r }

let wait_ready child =
  let deadline = Unix.gettimeofday () +. 30. in
  let rec go () =
    let ready =
      match Http.request ~host:"127.0.0.1" ~port:child.port "/ready" with
      | 200, _, _ -> true
      | _ -> false
      | exception (Unix.Unix_error _ | Failure _) -> false
    in
    if ready then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "child never became ready"
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let kill9 child =
  Unix.kill child.pid Sys.sigkill;
  ignore (Unix.waitpid [] child.pid);
  (try Unix.close child.out_fd with Unix.Unix_error _ -> ())

(* Clean shutdown: SIGTERM and wait for the exit — the stop-drain path
   (journal flush, final snapshot, context snapshot) runs to completion. *)
let stop_clean child =
  Unix.kill child.pid Sys.sigterm;
  ignore (Unix.waitpid [] child.pid);
  (try Unix.close child.out_fd with Unix.Unix_error _ -> ())

let http child ?meth ?body target =
  Http.request ~host:"127.0.0.1" ~port:child.port ?meth ?body target

let wait_for ?(timeout = 10.) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let create_body = {|{"dataset":"product-reviews","q":"gps","top":3}|}

let create_session child =
  let status, _, body = http child ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "create acked" 201 status;
  match member_exn "id" body with
  | Json.String id -> id
  | v -> Alcotest.failf "session id: %s" (Json.to_string v)

let resize_session child id size_bound =
  let status, _, _ =
    http child ~meth:"POST"
      ~body:(Printf.sprintf {|{"size_bound":%d}|} size_bound)
      ("/session/" ^ id ^ "/size")
  in
  check Alcotest.int "resize acked" 200 status

let session_body child id =
  let status, _, body = http child ("/session/" ^ id) in
  check Alcotest.int (id ^ " served") 200 status;
  body

let session_status child id =
  match http child ("/session/" ^ id) with
  | status, _, _ -> status
  | exception (Unix.Unix_error _ | Failure _) -> -1

(* A /compare body minus its wall-clock [elapsed_s] field — everything
   else must be byte-identical across servers and restarts. *)
let compare_body child =
  let status, _, body = http child ~meth:"POST" ~body:create_body "/compare" in
  check Alcotest.int "/compare 200" 200 status;
  match Json.of_string body with
  | Ok (Json.Obj fields) ->
    Json.to_string
      (Json.Obj (List.filter (fun (k, _) -> k <> "elapsed_s") fields))
  | Ok _ | Error _ -> Alcotest.failf "bad /compare body: %s" body

let assert_sessions child expected =
  List.iter
    (fun (id, size_bound, ranks) ->
      let body = session_body child id in
      (match member_exn "size_bound" body with
      | Json.Int n -> check Alcotest.int (id ^ " size_bound") size_bound n
      | v -> Alcotest.failf "%s size_bound: %s" id (Json.to_string v));
      match member_exn "ranks" body with
      | Json.List vs ->
        check
          Alcotest.(list int)
          (id ^ " ranks") ranks
          (List.filter_map Json.to_int vs)
      | v -> Alcotest.failf "%s ranks: %s" id (Json.to_string v))
    expected

(* Fire one request and deliberately never read the response, so the op is
   sent but not acknowledged; returns the open socket so it outlives the
   child being killed while parked on a failpoint mid-mutation. *)
let send_unacked child body target =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, child.port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock addr;
  let oc = Unix.out_channel_of_descr sock in
  Http.send_request oc ~host:"127.0.0.1" ~meth:"POST" ~body target;
  sock

(* /ready and /metrics field access *)

let ready_field child name =
  let _, _, body = http child "/ready" in
  member_exn name body

let ready_str child name =
  match ready_field child name with
  | Json.String s -> s
  | v -> Alcotest.failf "/ready %s: %s" name (Json.to_string v)

let ready_int child name =
  match ready_field child name with
  | Json.Int n -> n
  | v -> Alcotest.failf "/ready %s: %s" name (Json.to_string v)

let ready_bool child name =
  match ready_field child name with
  | Json.Bool b -> b
  | v -> Alcotest.failf "/ready %s: %s" name (Json.to_string v)

let metric_int child name =
  let _, _, metrics = http child "/metrics" in
  match member_exn name metrics with
  | Json.Int n -> n
  | v -> Alcotest.failf "metrics %s: %s" name (Json.to_string v)

let metric_obj_int child obj name =
  let _, _, metrics = http child "/metrics" in
  match member_exn obj metrics with
  | Json.Obj fields -> (
    match List.assoc_opt name fields with
    | Some (Json.Int n) -> n
    | v ->
      Alcotest.failf "metrics %s.%s: %s" obj name
        (match v with Some v -> Json.to_string v | None -> "missing"))
  | v -> Alcotest.failf "metrics %s: %s" obj (Json.to_string v)

let repl_int child name = metric_obj_int child "replication" name
let intern_int child name = metric_obj_int child "context_intern" name
let durability_int child name = metric_obj_int child "durability" name

(* ---- Satellite 3: stop-drain flush ---------------------------------------- *)

(* A clean SIGTERM under a long fsync interval must flush the journal
   before the final snapshot starts — park that snapshot's rename and
   SIGKILL the child there: everything acked before the stop recovers
   byte-identically even though the interval never elapsed and the final
   checkpoint died half-written. *)
let test_stop_drain () =
  let dir = fresh_dir () in
  let c1 =
    start_child ~state_dir:dir
      ~env_extra:[ "XSACT_FAILPOINTS=persist.snapshot.rename=sleep:600" ]
      [ "--fsync"; "interval:600" ]
  in
  wait_ready c1;
  let s1 = create_session c1 in
  let s2 = create_session c1 in
  resize_session c1 s1 6;
  (* s2 is never mutated, so its cold rebuild after recovery must be
     byte-identical; s1's resize history is recipe-normalized by recovery
     (final bound, one run), so it is checked semantically *)
  let b2 = session_body c1 s2 in
  Unix.kill c1.pid Sys.sigterm;
  wait_for "stop-drain to park on the final snapshot" (fun () ->
      Sys.file_exists (Filename.concat dir "snapshot.tmp"));
  kill9 c1;
  let c2 = start_child ~state_dir:dir [] in
  wait_ready c2;
  check Alcotest.bool "aborted final checkpoint discarded" false
    (Sys.file_exists (Filename.concat dir "snapshot.tmp"));
  check Alcotest.int "no torn records" 0
    (durability_int c2 "recovery_truncated_records");
  assert_sessions c2 [ (s1, 6, [ 1; 2; 3 ]); (s2, 8, [ 1; 2; 3 ]) ];
  check Alcotest.string "s2 byte-identical" b2 (session_body c2 s2);
  kill9 c2

(* ---- Satellite 4: intern-table rewarm across restart ----------------------- *)

let test_intern_rewarm () =
  let dir = fresh_dir () in
  let c1 = start_child ~state_dir:dir [] in
  wait_ready c1;
  let ids = List.init 4 (fun _ -> create_session c1) in
  kill9 c1;
  (* SIGKILL wrote no context snapshot: the restart restores every session
     cold, then the k first touches over one corpus share one physical
     context build through the intern table *)
  let c2 = start_child ~state_dir:dir [] in
  wait_ready c2;
  check Alcotest.int "cold boot: nothing built yet" 0
    (metric_int c2 "context_builds_full");
  check Alcotest.int "cold boot: no snapshot to load" 0
    (repl_int c2 "context_snapshot_loads");
  check Alcotest.int "cold boot: all sessions cold" 4
    (metric_int c2 "sessions_cold");
  List.iter (fun id -> ignore (session_body c2 id)) ids;
  check Alcotest.int "one physical build for k sessions" 1
    (metric_int c2 "context_builds_full");
  check Alcotest.int "the rest acquired from the intern table" 3
    (metric_int c2 "context_builds_reused");
  check Alcotest.int "k sessions pin one context" 4 (intern_int c2 "refs");
  check Alcotest.int "one interned entry" 1 (intern_int c2 "entries");
  check Alcotest.int "all warm" 4 (metric_int c2 "sessions_warm");
  kill9 c2

(* ---- Warm boot from a context snapshot ------------------------------------ *)

let test_warm_boot () =
  let dir = fresh_dir () in
  let c1 = start_child ~state_dir:dir [] in
  wait_ready c1;
  let s1 = create_session c1 in
  let s2 = create_session c1 in
  resize_session c1 s2 6;
  let b1 = session_body c1 s1 in
  let b2 = session_body c1 s2 in
  stop_clean c1;
  check Alcotest.bool "context snapshot written on clean stop" true
    (Sys.file_exists (Filename.concat dir "contexts"));
  let c2 = start_child ~state_dir:dir [] in
  wait_ready c2;
  check Alcotest.bool "sessions loaded from the snapshot" true
    (repl_int c2 "context_snapshot_loads" >= 1);
  check Alcotest.int "no snapshot misses" 0
    (repl_int c2 "context_snapshot_misses");
  check Alcotest.int "warm at boot, before any touch" 2
    (metric_int c2 "sessions_warm");
  check Alcotest.int "zero physical builds" 0
    (metric_int c2 "context_builds_full");
  check Alcotest.string "s1 byte-identical from warm boot" b1
    (session_body c2 s1);
  check Alcotest.string "s2 byte-identical from warm boot" b2
    (session_body c2 s2);
  stop_clean c2;
  (* a torn context snapshot falls back to the cold path, keeps serving *)
  let path = Filename.concat dir "contexts" in
  let full = read_file path in
  write_file path (String.sub full 0 (String.length full - 3));
  let c3 = start_child ~state_dir:dir [] in
  wait_ready c3;
  check Alcotest.int "torn snapshot: cold boot" 0
    (repl_int c3 "context_snapshot_loads");
  check Alcotest.string "torn snapshot: s1 still byte-identical" b1
    (session_body c3 s1);
  stop_clean c3;
  (* the opt-out flag skips the (rewritten, valid) snapshot entirely *)
  let c4 = start_child ~state_dir:dir [ "--no-context-snapshots" ] in
  wait_ready c4;
  check Alcotest.int "flag: nothing loaded" 0
    (repl_int c4 "context_snapshot_loads");
  check Alcotest.int "flag: all cold" 0 (metric_int c4 "sessions_warm");
  check Alcotest.string "flag: rebuild still byte-identical" b1
    (session_body c4 s1);
  assert_sessions c4 [ (s1, 8, [ 1; 2; 3 ]); (s2, 6, [ 1; 2; 3 ]) ];
  kill9 c4

(* ---- The failover harness ------------------------------------------------- *)

let test_failover () =
  let dir_p = fresh_dir () in
  let dir_f = fresh_dir () in
  let p1 = start_child ~state_dir:dir_p [ "--fsync"; "always" ] in
  wait_ready p1;
  let s1 = create_session p1 in
  let s2 = create_session p1 in
  resize_session p1 s1 6;
  (* the follower cold-connects and receives everything as a resync *)
  let f =
    start_child ~state_dir:dir_f
      [ "--replica-of"; Printf.sprintf "127.0.0.1:%d" p1.port ]
  in
  wait_ready f;
  check Alcotest.string "follower role in /ready" "follower"
    (ready_str f "role");
  wait_for "follower to catch up" (fun () ->
      ready_bool f "connected"
      && ready_int f "lag_records" = 0
      && session_status f s2 = 200);
  (* a record created after the connect streams live *)
  let s3 = create_session p1 in
  wait_for "live record to replicate" (fun () -> session_status f s3 = 200);
  (* the follower refuses mutations, pointing at the primary *)
  let status, _, body = http f ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "mutations 503 on the follower" 503 status;
  (match member_exn "error" body with
  | Json.Obj fields ->
    (match List.assoc_opt "code" fields with
    | Some (Json.String "follower") -> ()
    | v ->
      Alcotest.failf "error code: %s"
        (match v with Some v -> Json.to_string v | None -> "missing"));
    (match List.assoc_opt "message" fields with
    | Some (Json.String m) ->
      check Alcotest.bool "hint names the primary" true
        (let sub = "127.0.0.1" in
         let rec has i =
           i + String.length sub <= String.length m
           && (String.sub m i (String.length sub) = sub || has (i + 1))
         in
         has 0)
    | _ -> Alcotest.fail "no error message")
  | v -> Alcotest.failf "error envelope: %s" (Json.to_string v));
  (* read-only /compare is served on the follower, byte-identical modulo
     the wall-clock elapsed_s field *)
  let cmp_f = compare_body f in
  let cmp_p = compare_body p1 in
  check Alcotest.string "follower /compare byte-identical" cmp_p cmp_f;
  (* restart the primary on its port with a parked torn-append failpoint:
     the follower resyncs to the new incarnation, then the primary is
     SIGKILLed mid-mutation — the op was never acked and its record is
     torn, so it must die with the primary *)
  let port = p1.port in
  kill9 p1;
  let p2 =
    start_child ~state_dir:dir_p ~port
      ~env_extra:[ "XSACT_FAILPOINTS=persist.append.tear=sleep:600" ]
      [ "--fsync"; "always" ]
  in
  wait_ready p2;
  wait_for "follower to resync to the new primary" (fun () ->
      ready_bool f "connected" && ready_int f "lag_records" = 0);
  (* the acked truth: every session as the recovered primary serves it
     (recovery recipe-normalizes mutation history, and the follower's
     replayed rebuilds go through the same deterministic path) *)
  let pre = List.map (fun id -> (id, session_body p2 id)) [ s1; s2; s3 ] in
  let before = file_size (Filename.concat dir_p "journal") in
  let sock =
    send_unacked p2 {|{"size_bound":9}|} ("/session/" ^ s2 ^ "/size")
  in
  wait_for "torn header to land" (fun () ->
      file_size (Filename.concat dir_p "journal") >= before + 8);
  kill9 p2;
  Unix.close sock;
  (* the follower sees the primary die yet keeps serving reads *)
  wait_for "follower to notice the dead primary" (fun () ->
      not (ready_bool f "connected"));
  List.iter
    (fun (id, b) ->
      check Alcotest.string (id ^ " still served follower-side") b
        (session_body f id))
    pre;
  (* promote: the follower flips to primary and accepts writes *)
  let status, _, body = http f ~meth:"POST" "/v1/promote" in
  check Alcotest.int "promote 200" 200 status;
  (match member_exn "promoted" body with
  | Json.Bool true -> ()
  | v -> Alcotest.failf "promoted: %s" (Json.to_string v));
  check Alcotest.string "role flipped" "primary" (ready_str f "role");
  check Alcotest.bool "promotion counted" true (repl_int f "promotions" >= 1);
  (* every acked session serves byte-identically after failover *)
  List.iter
    (fun (id, b) ->
      check Alcotest.string (id ^ " byte-identical after failover") b
        (session_body f id))
    pre;
  check Alcotest.string "/compare byte-identical after failover" cmp_p
    (compare_body f);
  (* the torn, unacked resize died with the primary *)
  (match member_exn "size_bound" (session_body f s2) with
  | Json.Int 8 -> ()
  | v -> Alcotest.failf "unacked resize leaked: %s" (Json.to_string v));
  (* mutations now accepted; the id sequence continues without reuse *)
  resize_session f s2 9;
  let s4 = create_session f in
  check Alcotest.string "id sequence continues" "s4" s4;
  (* a second promote is an idempotent no-op *)
  let status, _, body = http f ~meth:"POST" "/v1/promote" in
  check Alcotest.int "re-promote 200" 200 status;
  (match member_exn "promoted" body with
  | Json.Bool false -> ()
  | v -> Alcotest.failf "re-promote: %s" (Json.to_string v));
  (* the promoted follower's directory was a valid recovery image all
     along: kill -9 and recover everything from it *)
  kill9 f;
  let f2 = start_child ~state_dir:dir_f [] in
  wait_ready f2;
  assert_sessions f2
    [ (s1, 6, [ 1; 2; 3 ]); (s2, 9, [ 1; 2; 3 ]);
      (s3, 8, [ 1; 2; 3 ]); (s4, 8, [ 1; 2; 3 ]) ];
  kill9 f2

(* ---- Auto-takeover on loss of the primary ---------------------------------- *)

let test_auto_takeover () =
  let dir_p = fresh_dir () in
  let dir_f = fresh_dir () in
  let p = start_child ~state_dir:dir_p [] in
  wait_ready p;
  let s1 = create_session p in
  let f =
    start_child ~state_dir:dir_f
      [ "--replica-of"; Printf.sprintf "127.0.0.1:%d" p.port;
        "--takeover-after"; "0.75" ]
  in
  wait_ready f;
  wait_for "follower to catch up" (fun () ->
      ready_bool f "connected" && session_status f s1 = 200);
  kill9 p;
  wait_for ~timeout:20. "self-promotion" (fun () ->
      ready_str f "role" = "primary");
  (* promoted: mutations accepted, state intact *)
  resize_session f s1 7;
  assert_sessions f [ (s1, 7, [ 1; 2; 3 ]) ];
  kill9 f

(* ---- Replay divergence: detected, counted, healed --------------------------- *)

let test_divergence () =
  let dir_p = fresh_dir () in
  let dir_f = fresh_dir () in
  let p = start_child ~state_dir:dir_p [] in
  wait_ready p;
  let s1 = create_session p in
  (* the follower swallows its first streamed record (the failpoint fires
     once), silently diverging from the primary *)
  let f =
    start_child ~state_dir:dir_f
      ~env_extra:[ "XSACT_FAILPOINTS=repl.apply.corrupt=fail:1" ]
      [ "--replica-of"; Printf.sprintf "127.0.0.1:%d" p.port ]
  in
  wait_ready f;
  wait_for "resync to land" (fun () -> session_status f s1 = 200);
  let s2 = create_session p in
  (* the digest in the next heartbeat disagrees while the follower believes
     itself caught up: divergence is counted and a resync heals it *)
  wait_for ~timeout:20. "divergence detection" (fun () ->
      repl_int f "divergences" >= 1);
  wait_for ~timeout:20. "the healing resync" (fun () ->
      session_status f s2 = 200);
  check Alcotest.bool "healed via a second resync" true
    (repl_int f "resyncs" >= 2);
  check Alcotest.string "byte-identical after healing" (session_body p s2)
    (session_body f s2);
  kill9 p;
  kill9 f

let () =
  Alcotest.run "xsact_failover"
    [
      ( "tailer",
        [
          Alcotest.test_case "offset-addressed reads" `Quick test_tailer;
          Alcotest.test_case "record-size cap" `Quick test_record_cap;
        ] );
      ( "ctxsnap",
        [
          Alcotest.test_case "roundtrip and corruption" `Quick
            test_ctxsnap_roundtrip;
          Alcotest.test_case "crash failpoints" `Quick test_ctxsnap_failpoints;
        ] );
      ( "warmboot",
        [
          Alcotest.test_case "record codec" `Quick test_warmboot_codec;
          Alcotest.test_case "snapshot warm boot" `Quick test_warm_boot;
          Alcotest.test_case "intern rewarm" `Quick test_intern_rewarm;
        ] );
      ( "stopdrain",
        [ Alcotest.test_case "flush on clean stop" `Quick test_stop_drain ] );
      ( "failover",
        [
          Alcotest.test_case "kill the primary" `Quick test_failover;
          Alcotest.test_case "auto takeover" `Quick test_auto_takeover;
          Alcotest.test_case "divergence heals" `Quick test_divergence;
        ] );
    ]
