(* Warm failover tests, bottom-up: the offset-addressed journal tailer and
   its record-size cap, the verified context-snapshot container and its
   crash failpoints, the warm-boot record codec — and the acceptance
   harnesses at the top of the stack: a real primary/follower pair of
   xsact-serve children driven over HTTP, the primary killed with SIGKILL
   mid-mutation, the follower promoted and required to serve every acked
   session byte-identically; plus clean-shutdown stop-drain, warm-boot
   snapshot loading, cross-restart intern rewarming, self-promotion on
   loss of the primary, and replay-divergence detection + healing. *)

module Journal = Xsact_persist.Journal
module Snapshot = Xsact_persist.Snapshot
module Failpoint = Xsact_util.Failpoint
module Http = Xsact_server.Http
module Json = Xsact_server.Json
module Warmboot = Xsact_server.Warmboot

let check = Alcotest.check

let member_exn name body =
  match Json.of_string body with
  | Ok j -> (
    match Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "no field %S in %s" name body)
  | Error e -> Alcotest.failf "bad response JSON %s: %s" body e

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "xsact_failover_%d_%d" (Unix.getpid ()) !counter)
    in
    let _ = Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) in
    dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> -1

(* ---- Journal tailer: offset-addressed reads ------------------------------- *)

let test_tailer () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "j" in
  let j = Journal.open_append ~fsync:Journal.Never path in
  List.iter (Journal.append j) [ "alpha"; "beta" ];
  Journal.close j;
  let r = Journal.read_from ~offset:0 path in
  check Alcotest.(list string) "both records" [ "alpha"; "beta" ] r.Journal.records;
  check Alcotest.bool "clean tail" false r.Journal.torn;
  check Alcotest.int "cursor arithmetic"
    ((2 * Journal.header_bytes) + String.length "alpha" + String.length "beta")
    r.Journal.next_offset;
  check Alcotest.int "cursor = file size" (file_size path) r.Journal.next_offset;
  (* resume from the cursor: only what was appended since *)
  let j = Journal.open_append ~fsync:Journal.Never path in
  Journal.append j "gamma";
  Journal.close j;
  let r2 = Journal.read_from ~offset:r.Journal.next_offset path in
  check Alcotest.(list string) "resumed read" [ "gamma" ] r2.Journal.records;
  (* a mid-append tail (header promises more than is there) is NOT torn:
     the tailer must poll again from the same cursor, not resync *)
  let full = read_file path in
  write_file path (full ^ "\x0a\x00\x00\x00\x00\x00\x00\x00par");
  let r3 = Journal.read_from ~offset:r2.Journal.next_offset path in
  check Alcotest.(list string) "incomplete: nothing yet" [] r3.Journal.records;
  check Alcotest.bool "incomplete: not torn" false r3.Journal.torn;
  check Alcotest.int "incomplete: cursor parked" r2.Journal.next_offset
    r3.Journal.next_offset;
  (* a complete record with a bad CRC IS torn: the primary must resync *)
  let buf = Buffer.create 32 in
  Journal.add_record buf "delta";
  let bad = Bytes.of_string (Buffer.contents buf) in
  Bytes.set bad 4 (Char.chr (Char.code (Bytes.get bad 4) lxor 1));
  write_file path (full ^ Bytes.to_string bad);
  let r4 = Journal.read_from ~offset:r2.Journal.next_offset path in
  check Alcotest.bool "bad CRC: torn" true r4.Journal.torn;
  check Alcotest.(list string) "bad CRC: nothing served" [] r4.Journal.records;
  (* a missing file reads as empty, cursor 0 *)
  let r5 = Journal.read_from ~offset:0 (Filename.concat dir "nope") in
  check Alcotest.(list string) "missing = empty" [] r5.Journal.records;
  check Alcotest.bool "missing: not torn" false r5.Journal.torn

(* The read-side record-size cap: a corrupt length prefix larger than the
   cap is a torn tail, never an allocation attempt. *)
let test_record_cap () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "j" in
  let j = Journal.open_append ~fsync:Journal.Never path in
  List.iter (Journal.append j) [ "ok1"; "ok2" ];
  Journal.close j;
  let good = read_file path in
  (* forge a header claiming a payload just past the default cap — small
     enough to be "plausible" to the 64 MiB write-side sanity bound, so
     only the read-side cap stands between the parser and the allocation *)
  let header = Bytes.create Journal.header_bytes in
  Bytes.set_int32_le header 0
    (Int32.of_int (Journal.default_max_record_bytes + 1));
  Bytes.set_int32_le header 4 0l;
  write_file path (good ^ Bytes.to_string header ^ String.make 64 'x');
  let r = Journal.read_from ~offset:0 path in
  check Alcotest.(list string) "good prefix survives" [ "ok1"; "ok2" ]
    r.Journal.records;
  check Alcotest.bool "forged length = torn" true r.Journal.torn;
  check Alcotest.int "cursor stops before the forgery" (String.length good)
    r.Journal.next_offset;
  (* the cap is configurable: a record the default happily reads is torn
     under a smaller cap *)
  let r = Journal.read_from ~max_record_bytes:2 ~offset:0 path in
  check Alcotest.(list string) "small cap rejects 3-byte payloads" []
    r.Journal.records;
  check Alcotest.bool "small cap: torn" true r.Journal.torn;
  (* the batch reader honors the same cap *)
  let r = Journal.read ~repair:false path in
  check Alcotest.(list string) "batch read: good prefix" [ "ok1"; "ok2" ]
    r.Journal.payloads;
  check Alcotest.int "batch read: forgery counted" 1 r.Journal.truncated_records

(* ---- Context-snapshot container ------------------------------------------- *)

let test_ctxsnap_roundtrip () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "contexts" in
  let records = [ "plain"; ""; "bin\x00\xff\nwith newline and nul" ] in
  Snapshot.write path records;
  let r = Snapshot.read path in
  check Alcotest.bool "valid" true r.Snapshot.valid;
  check Alcotest.(list string) "records round-trip" records r.Snapshot.records;
  (* missing file: invalid, empty — the caller cold-boots *)
  let r = Snapshot.read (Filename.concat dir "nope") in
  check Alcotest.bool "missing = invalid" false r.Snapshot.valid;
  check Alcotest.(list string) "missing = empty" [] r.Snapshot.records;
  (* any truncation invalidates the whole file — all-or-nothing *)
  let full = read_file path in
  write_file path (String.sub full 0 (String.length full - 1));
  let r = Snapshot.read path in
  check Alcotest.bool "truncated = invalid" false r.Snapshot.valid;
  check Alcotest.(list string) "truncated = nothing" [] r.Snapshot.records;
  (* one corrupt byte mid-body: CRC catches it *)
  let bad = Bytes.of_string full in
  let mid = String.length full / 2 in
  Bytes.set bad mid (Char.chr (Char.code (Bytes.get bad mid) lxor 0x20));
  write_file path (Bytes.to_string bad);
  let r = Snapshot.read path in
  check Alcotest.bool "corrupt = invalid" false r.Snapshot.valid

let test_ctxsnap_failpoints () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "contexts" in
  let old = [ "the"; "previous"; "snapshot" ] in
  Snapshot.write path old;
  (* a write torn between body and trailer never clobbers the last valid
     snapshot — tmp + atomic rename *)
  Failpoint.reset ();
  Failpoint.enable "persist.ctxsnap.tear" Failpoint.Fail;
  (match Snapshot.write path [ "new" ] with
  | () -> Alcotest.fail "tear failpoint did not fire"
  | exception Failpoint.Injected _ -> ());
  Failpoint.reset ();
  let r = Snapshot.read path in
  check Alcotest.bool "old snapshot survives a torn write" true
    r.Snapshot.valid;
  check Alcotest.(list string) "old records intact" old r.Snapshot.records;
  (* same for a crash just before the rename *)
  Failpoint.enable "persist.ctxsnap.rename" Failpoint.Fail;
  (match Snapshot.write path [ "newer" ] with
  | () -> Alcotest.fail "rename failpoint did not fire"
  | exception Failpoint.Injected _ -> ());
  Failpoint.reset ();
  let r = Snapshot.read path in
  check Alcotest.bool "old snapshot survives a pre-rename crash" true
    r.Snapshot.valid;
  check Alcotest.(list string) "old records still intact" old
    r.Snapshot.records

(* ---- Warm-boot record codec ----------------------------------------------- *)

let mk_profile label =
  let f e a v =
    { Feature.ftype = { Feature.entity = e; attribute = a }; value = v }
  in
  Result_profile.make ~label
    ~populations:[ ("camera", 3); ("lens", 2) ]
    [
      (f "camera" "zoom" "10x", 2);
      (f "camera" "zoom" "4x", 1);
      (f "camera" "price" "cheap", 3);
      (f "lens" "mount" "EF", 2);
    ]

let test_warmboot_codec () =
  (* a context record: binary blob (newlines, nuls) after the JSON header *)
  let ctx =
    Warmboot.Ctx
      {
        Warmboot.x_key = "dataset=product-reviews&q=gps";
        x_profiles = [| mk_profile "Alpha \"quoted\""; mk_profile "Beta\n" |];
        x_blob = "\x00\x01\x02\nBLOB\xff\xfe\x00tail";
      }
  in
  (match Warmboot.decode (Warmboot.encode ctx) with
  | Ok (Warmboot.Ctx c) ->
    check Alcotest.string "key" "dataset=product-reviews&q=gps"
      c.Warmboot.x_key;
    check Alcotest.string "blob byte-identical" "\x00\x01\x02\nBLOB\xff\xfe\x00tail"
      c.Warmboot.x_blob;
    check Alcotest.int "profile count" 2 (Array.length c.Warmboot.x_profiles);
    check Alcotest.bool "profiles structurally equal" true
      (c.Warmboot.x_profiles
      = [| mk_profile "Alpha \"quoted\""; mk_profile "Beta\n" |]);
    check Alcotest.string "re-encode is stable" (Warmboot.encode ctx)
      (Warmboot.encode (Warmboot.Ctx c))
  | Ok _ -> Alcotest.fail "decoded to the wrong record kind"
  | Error e -> Alcotest.failf "ctx decode failed: %s" e);
  (* a session record *)
  let sess =
    Warmboot.Sess
      {
        Warmboot.z_id = "s7";
        z_ctx = "dataset=product-reviews&q=gps";
        z_bound = 6;
        z_runs = 3;
        z_dfss = [| [| 2; 1; 0 |]; [| 3 |]; [||] |];
      }
  in
  (match Warmboot.decode (Warmboot.encode sess) with
  | Ok (Warmboot.Sess s) ->
    check Alcotest.string "id" "s7" s.Warmboot.z_id;
    check Alcotest.string "ctx key" "dataset=product-reviews&q=gps"
      s.Warmboot.z_ctx;
    check Alcotest.int "bound" 6 s.Warmboot.z_bound;
    check Alcotest.int "runs" 3 s.Warmboot.z_runs;
    check Alcotest.bool "q-vectors equal" true
      (s.Warmboot.z_dfss = [| [| 2; 1; 0 |]; [| 3 |]; [||] |])
  | Ok _ -> Alcotest.fail "decoded to the wrong record kind"
  | Error e -> Alcotest.failf "sess decode failed: %s" e);
  (* garbage is a shape error, not an exception *)
  List.iter
    (fun s ->
      match Warmboot.decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "decoded garbage %S" s)
    [ ""; "not json"; "{}"; {|{"k":"wat"}|}; {|{"k":"sess","id":3}|} ]

(* ---- The child harness ---------------------------------------------------- *)

let serve_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "xsact_serve.exe"

type child = { pid : int; port : int; out_fd : Unix.file_descr }

(* Start a real xsact-serve child and parse its port off stdout. [env_extra]
   arms failpoints in the child only (XSACT_FAILPOINTS=...); [port] pins
   the listen port (0, the default, picks an ephemeral one). *)
let start_child ?(env_extra = []) ?(port = 0) ~state_dir args =
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let argv =
    Array.of_list
      ([ serve_exe; "--port"; string_of_int port; "--dataset";
         "product-reviews"; "--state-dir"; state_dir ]
      @ args)
  in
  let env = Array.append (Unix.environment ()) (Array.of_list env_extra) in
  let pid =
    Unix.create_process_env serve_exe argv env Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let parse_port s =
    let marker = "http://127.0.0.1:" in
    let mlen = String.length marker in
    let rec find i =
      if i + mlen > String.length s then None
      else if String.sub s i mlen = marker then Some (i + mlen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
      let stop = ref start in
      while
        !stop < String.length s
        && match s.[!stop] with '0' .. '9' -> true | _ -> false
      do
        incr stop
      done;
      if !stop > start then
        int_of_string_opt (String.sub s start (!stop - start))
      else None
  in
  let buf = Buffer.create 256 in
  let deadline = Unix.gettimeofday () +. 30. in
  let got = ref None in
  let chunk = Bytes.create 4096 in
  while !got = None && Unix.gettimeofday () < deadline do
    match Unix.select [ out_r ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ ->
      let n = Unix.read out_r chunk 0 (Bytes.length chunk) in
      if n = 0 then (
        Unix.kill pid Sys.sigkill;
        Alcotest.failf "child exited before listening: %s"
          (Buffer.contents buf))
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        got := parse_port (Buffer.contents buf)
      end
  done;
  match !got with
  | None ->
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    Alcotest.failf "no listening line from child: %s" (Buffer.contents buf)
  | Some port -> { pid; port; out_fd = out_r }

let wait_ready child =
  let deadline = Unix.gettimeofday () +. 30. in
  let rec go () =
    let ready =
      match Http.request ~host:"127.0.0.1" ~port:child.port "/ready" with
      | 200, _, _ -> true
      | _ -> false
      | exception (Unix.Unix_error _ | Failure _) -> false
    in
    if ready then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "child never became ready"
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let kill9 child =
  Unix.kill child.pid Sys.sigkill;
  ignore (Unix.waitpid [] child.pid);
  (try Unix.close child.out_fd with Unix.Unix_error _ -> ())

(* Clean shutdown: SIGTERM and wait for the exit — the stop-drain path
   (journal flush, final snapshot, context snapshot) runs to completion. *)
let stop_clean child =
  Unix.kill child.pid Sys.sigterm;
  ignore (Unix.waitpid [] child.pid);
  (try Unix.close child.out_fd with Unix.Unix_error _ -> ())

let http child ?meth ?body target =
  Http.request ~host:"127.0.0.1" ~port:child.port ?meth ?body target

let wait_for ?(timeout = 10.) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let create_body = {|{"dataset":"product-reviews","q":"gps","top":3}|}

let create_session child =
  let status, _, body = http child ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "create acked" 201 status;
  match member_exn "id" body with
  | Json.String id -> id
  | v -> Alcotest.failf "session id: %s" (Json.to_string v)

let resize_session child id size_bound =
  let status, _, _ =
    http child ~meth:"POST"
      ~body:(Printf.sprintf {|{"size_bound":%d}|} size_bound)
      ("/session/" ^ id ^ "/size")
  in
  check Alcotest.int "resize acked" 200 status

let session_body child id =
  let status, _, body = http child ("/session/" ^ id) in
  check Alcotest.int (id ^ " served") 200 status;
  body

let session_status child id =
  match http child ("/session/" ^ id) with
  | status, _, _ -> status
  | exception (Unix.Unix_error _ | Failure _) -> -1

(* A /compare body minus its wall-clock [elapsed_s] field — everything
   else must be byte-identical across servers and restarts. *)
let compare_body child =
  let status, _, body = http child ~meth:"POST" ~body:create_body "/compare" in
  check Alcotest.int "/compare 200" 200 status;
  match Json.of_string body with
  | Ok (Json.Obj fields) ->
    Json.to_string
      (Json.Obj (List.filter (fun (k, _) -> k <> "elapsed_s") fields))
  | Ok _ | Error _ -> Alcotest.failf "bad /compare body: %s" body

let assert_sessions child expected =
  List.iter
    (fun (id, size_bound, ranks) ->
      let body = session_body child id in
      (match member_exn "size_bound" body with
      | Json.Int n -> check Alcotest.int (id ^ " size_bound") size_bound n
      | v -> Alcotest.failf "%s size_bound: %s" id (Json.to_string v));
      match member_exn "ranks" body with
      | Json.List vs ->
        check
          Alcotest.(list int)
          (id ^ " ranks") ranks
          (List.filter_map Json.to_int vs)
      | v -> Alcotest.failf "%s ranks: %s" id (Json.to_string v))
    expected

(* Fire one request and deliberately never read the response, so the op is
   sent but not acknowledged; returns the open socket so it outlives the
   child being killed while parked on a failpoint mid-mutation. *)
let send_unacked child body target =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, child.port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock addr;
  let oc = Unix.out_channel_of_descr sock in
  Http.send_request oc ~host:"127.0.0.1" ~meth:"POST" ~body target;
  sock

(* /ready and /metrics field access *)

let ready_field child name =
  let _, _, body = http child "/ready" in
  member_exn name body

let ready_str child name =
  match ready_field child name with
  | Json.String s -> s
  | v -> Alcotest.failf "/ready %s: %s" name (Json.to_string v)

let ready_int child name =
  match ready_field child name with
  | Json.Int n -> n
  | v -> Alcotest.failf "/ready %s: %s" name (Json.to_string v)

let ready_bool child name =
  match ready_field child name with
  | Json.Bool b -> b
  | v -> Alcotest.failf "/ready %s: %s" name (Json.to_string v)

let metric_int child name =
  let _, _, metrics = http child "/metrics" in
  match member_exn name metrics with
  | Json.Int n -> n
  | v -> Alcotest.failf "metrics %s: %s" name (Json.to_string v)

let metric_obj_int child obj name =
  let _, _, metrics = http child "/metrics" in
  match member_exn obj metrics with
  | Json.Obj fields -> (
    match List.assoc_opt name fields with
    | Some (Json.Int n) -> n
    | v ->
      Alcotest.failf "metrics %s.%s: %s" obj name
        (match v with Some v -> Json.to_string v | None -> "missing"))
  | v -> Alcotest.failf "metrics %s: %s" obj (Json.to_string v)

let repl_int child name = metric_obj_int child "replication" name
let intern_int child name = metric_obj_int child "context_intern" name
let durability_int child name = metric_obj_int child "durability" name

(* ---- Satellite 3: stop-drain flush ---------------------------------------- *)

(* A clean SIGTERM under a long fsync interval must flush the journal
   before the final snapshot starts — park that snapshot's rename and
   SIGKILL the child there: everything acked before the stop recovers
   byte-identically even though the interval never elapsed and the final
   checkpoint died half-written. *)
let test_stop_drain () =
  let dir = fresh_dir () in
  let c1 =
    start_child ~state_dir:dir
      ~env_extra:[ "XSACT_FAILPOINTS=persist.snapshot.rename=sleep:600" ]
      [ "--fsync"; "interval:600" ]
  in
  wait_ready c1;
  let s1 = create_session c1 in
  let s2 = create_session c1 in
  resize_session c1 s1 6;
  (* s2 is never mutated, so its cold rebuild after recovery must be
     byte-identical; s1's resize history is recipe-normalized by recovery
     (final bound, one run), so it is checked semantically *)
  let b2 = session_body c1 s2 in
  Unix.kill c1.pid Sys.sigterm;
  wait_for "stop-drain to park on the final snapshot" (fun () ->
      Sys.file_exists (Filename.concat dir "snapshot.tmp"));
  kill9 c1;
  let c2 = start_child ~state_dir:dir [] in
  wait_ready c2;
  check Alcotest.bool "aborted final checkpoint discarded" false
    (Sys.file_exists (Filename.concat dir "snapshot.tmp"));
  check Alcotest.int "no torn records" 0
    (durability_int c2 "recovery_truncated_records");
  assert_sessions c2 [ (s1, 6, [ 1; 2; 3 ]); (s2, 8, [ 1; 2; 3 ]) ];
  check Alcotest.string "s2 byte-identical" b2 (session_body c2 s2);
  kill9 c2

(* ---- Satellite 4: intern-table rewarm across restart ----------------------- *)

let test_intern_rewarm () =
  let dir = fresh_dir () in
  let c1 = start_child ~state_dir:dir [] in
  wait_ready c1;
  let ids = List.init 4 (fun _ -> create_session c1) in
  kill9 c1;
  (* SIGKILL wrote no context snapshot: the restart restores every session
     cold, then the k first touches over one corpus share one physical
     context build through the intern table *)
  let c2 = start_child ~state_dir:dir [] in
  wait_ready c2;
  check Alcotest.int "cold boot: nothing built yet" 0
    (metric_int c2 "context_builds_full");
  check Alcotest.int "cold boot: no snapshot to load" 0
    (repl_int c2 "context_snapshot_loads");
  check Alcotest.int "cold boot: all sessions cold" 4
    (metric_int c2 "sessions_cold");
  List.iter (fun id -> ignore (session_body c2 id)) ids;
  check Alcotest.int "one physical build for k sessions" 1
    (metric_int c2 "context_builds_full");
  check Alcotest.int "the rest acquired from the intern table" 3
    (metric_int c2 "context_builds_reused");
  check Alcotest.int "k sessions pin one context" 4 (intern_int c2 "refs");
  check Alcotest.int "one interned entry" 1 (intern_int c2 "entries");
  check Alcotest.int "all warm" 4 (metric_int c2 "sessions_warm");
  kill9 c2

(* ---- Warm boot from a context snapshot ------------------------------------ *)

let test_warm_boot () =
  let dir = fresh_dir () in
  let c1 = start_child ~state_dir:dir [] in
  wait_ready c1;
  let s1 = create_session c1 in
  let s2 = create_session c1 in
  resize_session c1 s2 6;
  let b1 = session_body c1 s1 in
  let b2 = session_body c1 s2 in
  stop_clean c1;
  check Alcotest.bool "context snapshot written on clean stop" true
    (Sys.file_exists (Filename.concat dir "contexts"));
  let c2 = start_child ~state_dir:dir [] in
  wait_ready c2;
  check Alcotest.bool "sessions loaded from the snapshot" true
    (repl_int c2 "context_snapshot_loads" >= 1);
  check Alcotest.int "no snapshot misses" 0
    (repl_int c2 "context_snapshot_misses");
  check Alcotest.int "warm at boot, before any touch" 2
    (metric_int c2 "sessions_warm");
  check Alcotest.int "zero physical builds" 0
    (metric_int c2 "context_builds_full");
  check Alcotest.string "s1 byte-identical from warm boot" b1
    (session_body c2 s1);
  check Alcotest.string "s2 byte-identical from warm boot" b2
    (session_body c2 s2);
  stop_clean c2;
  (* a torn context snapshot falls back to the cold path, keeps serving *)
  let path = Filename.concat dir "contexts" in
  let full = read_file path in
  write_file path (String.sub full 0 (String.length full - 3));
  let c3 = start_child ~state_dir:dir [] in
  wait_ready c3;
  check Alcotest.int "torn snapshot: cold boot" 0
    (repl_int c3 "context_snapshot_loads");
  check Alcotest.string "torn snapshot: s1 still byte-identical" b1
    (session_body c3 s1);
  stop_clean c3;
  (* the opt-out flag skips the (rewritten, valid) snapshot entirely *)
  let c4 = start_child ~state_dir:dir [ "--no-context-snapshots" ] in
  wait_ready c4;
  check Alcotest.int "flag: nothing loaded" 0
    (repl_int c4 "context_snapshot_loads");
  check Alcotest.int "flag: all cold" 0 (metric_int c4 "sessions_warm");
  check Alcotest.string "flag: rebuild still byte-identical" b1
    (session_body c4 s1);
  assert_sessions c4 [ (s1, 8, [ 1; 2; 3 ]); (s2, 6, [ 1; 2; 3 ]) ];
  kill9 c4

(* ---- The failover harness ------------------------------------------------- *)

let test_failover () =
  let dir_p = fresh_dir () in
  let dir_f = fresh_dir () in
  let p1 = start_child ~state_dir:dir_p [ "--fsync"; "always" ] in
  wait_ready p1;
  let s1 = create_session p1 in
  let s2 = create_session p1 in
  resize_session p1 s1 6;
  (* the follower cold-connects and receives everything as a resync *)
  let f =
    start_child ~state_dir:dir_f
      [ "--replica-of"; Printf.sprintf "127.0.0.1:%d" p1.port ]
  in
  wait_ready f;
  check Alcotest.string "follower role in /ready" "follower"
    (ready_str f "role");
  wait_for "follower to catch up" (fun () ->
      ready_bool f "connected"
      && ready_int f "lag_records" = 0
      && session_status f s2 = 200);
  (* a record created after the connect streams live *)
  let s3 = create_session p1 in
  wait_for "live record to replicate" (fun () -> session_status f s3 = 200);
  (* the follower refuses mutations, pointing at the primary *)
  let status, _, body = http f ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "mutations 503 on the follower" 503 status;
  (match member_exn "error" body with
  | Json.Obj fields ->
    (match List.assoc_opt "code" fields with
    | Some (Json.String "follower") -> ()
    | v ->
      Alcotest.failf "error code: %s"
        (match v with Some v -> Json.to_string v | None -> "missing"));
    (match List.assoc_opt "message" fields with
    | Some (Json.String m) ->
      check Alcotest.bool "hint names the primary" true
        (let sub = "127.0.0.1" in
         let rec has i =
           i + String.length sub <= String.length m
           && (String.sub m i (String.length sub) = sub || has (i + 1))
         in
         has 0)
    | _ -> Alcotest.fail "no error message")
  | v -> Alcotest.failf "error envelope: %s" (Json.to_string v));
  (* read-only /compare is served on the follower, byte-identical modulo
     the wall-clock elapsed_s field *)
  let cmp_f = compare_body f in
  let cmp_p = compare_body p1 in
  check Alcotest.string "follower /compare byte-identical" cmp_p cmp_f;
  (* restart the primary on its port with a parked torn-append failpoint:
     the follower resyncs to the new incarnation, then the primary is
     SIGKILLed mid-mutation — the op was never acked and its record is
     torn, so it must die with the primary *)
  let port = p1.port in
  kill9 p1;
  let p2 =
    start_child ~state_dir:dir_p ~port
      ~env_extra:[ "XSACT_FAILPOINTS=persist.append.tear=sleep:600" ]
      [ "--fsync"; "always" ]
  in
  wait_ready p2;
  wait_for "follower to resync to the new primary" (fun () ->
      ready_bool f "connected" && ready_int f "lag_records" = 0);
  (* the acked truth: every session as the recovered primary serves it
     (recovery recipe-normalizes mutation history, and the follower's
     replayed rebuilds go through the same deterministic path) *)
  let pre = List.map (fun id -> (id, session_body p2 id)) [ s1; s2; s3 ] in
  let before = file_size (Filename.concat dir_p "journal") in
  let sock =
    send_unacked p2 {|{"size_bound":9}|} ("/session/" ^ s2 ^ "/size")
  in
  wait_for "torn header to land" (fun () ->
      file_size (Filename.concat dir_p "journal") >= before + 8);
  kill9 p2;
  Unix.close sock;
  (* the follower sees the primary die yet keeps serving reads *)
  wait_for "follower to notice the dead primary" (fun () ->
      not (ready_bool f "connected"));
  List.iter
    (fun (id, b) ->
      check Alcotest.string (id ^ " still served follower-side") b
        (session_body f id))
    pre;
  (* promote: the follower flips to primary and accepts writes *)
  let status, _, body = http f ~meth:"POST" "/v1/promote" in
  check Alcotest.int "promote 200" 200 status;
  (match member_exn "promoted" body with
  | Json.Bool true -> ()
  | v -> Alcotest.failf "promoted: %s" (Json.to_string v));
  check Alcotest.string "role flipped" "primary" (ready_str f "role");
  check Alcotest.bool "promotion counted" true (repl_int f "promotions" >= 1);
  (* every acked session serves byte-identically after failover *)
  List.iter
    (fun (id, b) ->
      check Alcotest.string (id ^ " byte-identical after failover") b
        (session_body f id))
    pre;
  check Alcotest.string "/compare byte-identical after failover" cmp_p
    (compare_body f);
  (* the torn, unacked resize died with the primary *)
  (match member_exn "size_bound" (session_body f s2) with
  | Json.Int 8 -> ()
  | v -> Alcotest.failf "unacked resize leaked: %s" (Json.to_string v));
  (* mutations now accepted; the id sequence continues without reuse *)
  resize_session f s2 9;
  let s4 = create_session f in
  check Alcotest.string "id sequence continues" "s4" s4;
  (* a second promote is an idempotent no-op *)
  let status, _, body = http f ~meth:"POST" "/v1/promote" in
  check Alcotest.int "re-promote 200" 200 status;
  (match member_exn "promoted" body with
  | Json.Bool false -> ()
  | v -> Alcotest.failf "re-promote: %s" (Json.to_string v));
  (* the promoted follower's directory was a valid recovery image all
     along: kill -9 and recover everything from it *)
  kill9 f;
  let f2 = start_child ~state_dir:dir_f [] in
  wait_ready f2;
  assert_sessions f2
    [ (s1, 6, [ 1; 2; 3 ]); (s2, 9, [ 1; 2; 3 ]);
      (s3, 8, [ 1; 2; 3 ]); (s4, 8, [ 1; 2; 3 ]) ];
  kill9 f2

(* ---- Auto-takeover on loss of the primary ---------------------------------- *)

let test_auto_takeover () =
  let dir_p = fresh_dir () in
  let dir_f = fresh_dir () in
  let p = start_child ~state_dir:dir_p [] in
  wait_ready p;
  let s1 = create_session p in
  let f =
    start_child ~state_dir:dir_f
      [ "--replica-of"; Printf.sprintf "127.0.0.1:%d" p.port;
        "--takeover-after"; "0.75" ]
  in
  wait_ready f;
  wait_for "follower to catch up" (fun () ->
      ready_bool f "connected" && session_status f s1 = 200);
  kill9 p;
  wait_for ~timeout:20. "self-promotion" (fun () ->
      ready_str f "role" = "primary");
  (* promoted: mutations accepted, state intact *)
  resize_session f s1 7;
  assert_sessions f [ (s1, 7, [ 1; 2; 3 ]) ];
  kill9 f

(* ---- Replay divergence: detected, counted, healed --------------------------- *)

let test_divergence () =
  let dir_p = fresh_dir () in
  let dir_f = fresh_dir () in
  let p = start_child ~state_dir:dir_p [] in
  wait_ready p;
  let s1 = create_session p in
  (* the follower swallows its first streamed record (the failpoint fires
     once), silently diverging from the primary *)
  let f =
    start_child ~state_dir:dir_f
      ~env_extra:[ "XSACT_FAILPOINTS=repl.apply.corrupt=fail:1" ]
      [ "--replica-of"; Printf.sprintf "127.0.0.1:%d" p.port ]
  in
  wait_ready f;
  wait_for "resync to land" (fun () -> session_status f s1 = 200);
  let s2 = create_session p in
  (* the digest in the next heartbeat disagrees while the follower believes
     itself caught up: divergence is counted and a resync heals it *)
  wait_for ~timeout:20. "divergence detection" (fun () ->
      repl_int f "divergences" >= 1);
  wait_for ~timeout:20. "the healing resync" (fun () ->
      session_status f s2 = 200);
  check Alcotest.bool "healed via a second resync" true
    (repl_int f "resyncs" >= 2);
  check Alcotest.string "byte-identical after healing" (session_body p s2)
    (session_body f s2);
  kill9 p;
  kill9 f

(* ---- Base64 armor ----------------------------------------------------------- *)

let test_b64 () =
  let module B64 = Xsact_server.B64 in
  let module Prng = Xsact_util.Prng in
  (* RFC 4648 vectors *)
  List.iter
    (fun (plain, armored) ->
      check Alcotest.string ("encode " ^ plain) armored (B64.encode plain);
      match B64.decode armored with
      | Some d -> check Alcotest.string ("decode " ^ armored) plain d
      | None -> Alcotest.failf "decode %S failed" armored)
    [ ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v");
      ("foob", "Zm9vYg=="); ("fooba", "Zm9vYmE="); ("foobar", "Zm9vYmFy") ];
  (* binary round-trips at every length mod 3, including newline/nul/0xff
     bytes like the context blobs the armor exists for *)
  let prng = Prng.of_int 0x5eed in
  for len = 0 to 80 do
    let s = String.init len (fun _ -> Char.chr (Prng.int_in prng 0 255)) in
    match B64.decode (B64.encode s) with
    | Some d ->
      check Alcotest.string (Printf.sprintf "roundtrip len %d" len) s d
    | None -> Alcotest.failf "roundtrip len %d failed to decode" len
  done;
  (* malformed armor is [None], never an exception *)
  List.iter
    (fun s ->
      match B64.decode s with
      | None -> ()
      | Some _ -> Alcotest.failf "decoded malformed %S" s)
    [ "A"; "AB"; "ABC"; "===="; "A==="; "Zm9v!A=="; "Zg==Zg=="; "Z g==";
      "\xffZg=" ]

(* ---- Fencing epochs --------------------------------------------------------- *)

let addr_of port = Printf.sprintf "127.0.0.1:%d" port

(* Pick an ephemeral port and release it, so a child can be started on a
   port its peers were told about beforehand. *)
let free_port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false)

let assert_error_code what body expected =
  match member_exn "error" body with
  | Json.Obj fields -> (
    match List.assoc_opt "code" fields with
    | Some (Json.String c) -> check Alcotest.string what expected c
    | v ->
      Alcotest.failf "%s: error code %s" what
        (match v with Some v -> Json.to_string v | None -> "missing"))
  | v -> Alcotest.failf "%s: error envelope %s" what (Json.to_string v)

let assert_int_field what body name expected =
  match member_exn name body with
  | Json.Int n -> check Alcotest.int what expected n
  | v -> Alcotest.failf "%s: %s = %s" what name (Json.to_string v)

let assert_winner_field what body expected =
  match member_exn "winner" body with
  | Json.String w -> check Alcotest.string what expected w
  | v -> Alcotest.failf "%s: winner = %s" what (Json.to_string v)

(* The fence is durable and absolute: a primary demoted by a higher epoch
   answers every mutation 409 naming the winner, keeps serving reads, and
   a restart of its directory boots it fenced again — only a deliberate
   promote at the current epoch (the operator override) resurrects it. *)
let test_fencing_durable () =
  let dir = fresh_dir () in
  let c1 = start_child ~state_dir:dir [] in
  wait_ready c1;
  let s1 = create_session c1 in
  let b1 = session_body c1 s1 in
  (* the discovery probe: a fresh primary at epoch 0 *)
  let status, _, body = http c1 "/v1/epoch" in
  check Alcotest.int "epoch probe 200" 200 status;
  assert_int_field "fresh epoch" body "epoch" 0;
  (match member_exn "role" body with
  | Json.String "primary" -> ()
  | v -> Alcotest.failf "probe role: %s" (Json.to_string v));
  (* a demote at or below our epoch is the stale prober's problem *)
  let status, _, body =
    http c1 ~meth:"POST" ~body:{|{"epoch":0,"primary":"127.0.0.1:1"}|}
      "/v1/demote"
  in
  check Alcotest.int "stale demote 409" 409 status;
  assert_error_code "stale demote code" body "stale_epoch";
  check Alcotest.string "still primary" "primary" (ready_str c1 "role");
  (* a malformed demote is a 400, not a fence *)
  let status, _, _ = http c1 ~meth:"POST" ~body:{|{"epoch":"x"}|} "/v1/demote" in
  check Alcotest.int "malformed demote 400" 400 status;
  (* a higher epoch fences: role flips, the winner is recorded *)
  let status, _, _ =
    http c1 ~meth:"POST" ~body:{|{"epoch":5,"primary":"127.0.0.1:19"}|}
      "/v1/demote"
  in
  check Alcotest.int "fencing demote 200" 200 status;
  check Alcotest.string "role flipped" "follower" (ready_str c1 "role");
  check Alcotest.bool "fenced" true (ready_bool c1 "fenced");
  check Alcotest.int "epoch adopted" 5 (ready_int c1 "epoch");
  check Alcotest.bool "demotion counted" true (repl_int c1 "demotions" >= 1);
  (* mutations answer 409 with the winner's address, not the follower 503 *)
  let status, _, body = http c1 ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "mutation fenced" 409 status;
  assert_error_code "fenced code" body "fenced";
  assert_int_field "fenced body epoch" body "epoch" 5;
  assert_winner_field "fenced body winner" body "127.0.0.1:19";
  (* reads keep serving through the fence *)
  check Alcotest.string "reads survive fencing" b1 (session_body c1 s1);
  (* the fence survives kill -9: the ex-primary cannot resurrect itself *)
  kill9 c1;
  let c2 = start_child ~state_dir:dir [] in
  wait_ready c2;
  check Alcotest.string "still follower after restart" "follower"
    (ready_str c2 "role");
  check Alcotest.bool "still fenced after restart" true (ready_bool c2 "fenced");
  check Alcotest.int "epoch survives restart" 5 (ready_int c2 "epoch");
  check Alcotest.string "winner survives restart" "127.0.0.1:19"
    (ready_str c2 "primary");
  let status, _, body = http c2 ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "still 409 after restart" 409 status;
  assert_winner_field "winner hint after restart" body "127.0.0.1:19";
  check Alcotest.string "state survives restart" b1 (session_body c2 s1);
  (* promote refuses a stale expected-epoch (the CAS guard) ... *)
  let status, _, body = http c2 ~meth:"POST" ~body:{|{"epoch":3}|} "/v1/promote" in
  check Alcotest.int "stale CAS promote 409" 409 status;
  assert_error_code "stale CAS code" body "stale_epoch";
  (* ... and the operator override at the current epoch un-fences *)
  let status, _, body = http c2 ~meth:"POST" ~body:{|{"epoch":5}|} "/v1/promote" in
  check Alcotest.int "override promote 200" 200 status;
  (match member_exn "promoted" body with
  | Json.Bool true -> ()
  | v -> Alcotest.failf "override promoted: %s" (Json.to_string v));
  assert_int_field "promotion minted past the fence" body "epoch" 6;
  check Alcotest.string "primary again" "primary" (ready_str c2 "role");
  check Alcotest.bool "fence cleared" false (ready_bool c2 "fenced");
  resize_session c2 s1 6;
  (* the subscriber channel: a follower ahead of us on /v1/replicate is
     proof we were superseded — 409 to it, self-demotion here *)
  let status, _, body = http c2 "/v1/replicate?epoch=9" in
  check Alcotest.int "ahead subscriber 409" 409 status;
  assert_error_code "ahead subscriber code" body "fenced";
  check Alcotest.string "subscriber fenced us" "follower" (ready_str c2 "role");
  check Alcotest.int "subscriber's epoch adopted" 9 (ready_int c2 "epoch");
  kill9 c2

(* ---- Planned handover: demote, promote, converge ---------------------------- *)

let test_planned_handover () =
  let dir_p = fresh_dir () in
  let dir_f = fresh_dir () in
  let fport = free_port () in
  let p = start_child ~state_dir:dir_p [ "--peer"; addr_of fport ] in
  wait_ready p;
  let s1 = create_session p in
  let f =
    start_child ~state_dir:dir_f ~port:fport
      [ "--replica-of"; addr_of p.port; "--peer"; addr_of p.port ]
  in
  wait_ready f;
  wait_for "follower to catch up" (fun () ->
      ready_bool f "connected"
      && ready_int f "lag_records" = 0
      && session_status f s1 = 200);
  (* runbook step 1: step the primary down (empty-body demote) — no epoch
     change, no fence, just a refusal to accept new writes *)
  let status, _, _ = http p ~meth:"POST" "/v1/demote" in
  check Alcotest.int "step-down 200" 200 status;
  check Alcotest.string "stepped down" "follower" (ready_str p "role");
  check Alcotest.bool "planned step-down is not a fence" false
    (ready_bool p "fenced");
  check Alcotest.int "step-down mints no epoch" 0 (ready_int p "epoch");
  let status, _, body = http p ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "handover window refuses writes" 503 status;
  assert_error_code "handover window code" body "follower";
  (* runbook step 2: promote the follower — this mints the epoch that
     makes the handover stick *)
  let status, _, body = http f ~meth:"POST" "/v1/promote" in
  check Alcotest.int "promote 200" 200 status;
  assert_int_field "promotion minted epoch 1" body "epoch" 1;
  (* the new primary's fencer + the old primary's discovery converge: the
     ex-primary adopts the epoch and re-points at the winner *)
  wait_for ~timeout:20. "ex-primary adopts the new epoch" (fun () ->
      ready_int p "epoch" = 1);
  wait_for ~timeout:20. "ex-primary re-points at the winner" (fun () ->
      match ready_field p "primary" with
      | Json.String a -> a = addr_of fport
      | _ -> false);
  wait_for ~timeout:20. "ex-primary subscribes to the winner" (fun () ->
      ready_bool p "connected");
  check Alcotest.bool "handover is still not a fence" false
    (ready_bool p "fenced");
  (* a mutation on the new primary replicates back to the old one *)
  resize_session f s1 6;
  wait_for ~timeout:20. "the mutation replicates back" (fun () ->
      match http p ("/session/" ^ s1) with
      | 200, _, body -> (
        match member_exn "size_bound" body with
        | Json.Int 6 -> true
        | _ -> false)
      | _ -> false
      | exception (Unix.Unix_error _ | Failure _) -> false);
  (* satellite: the 503 hint names the *current* primary, not the
     pre-handover topology *)
  let status, _, body = http p ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "ex-primary still refuses writes" 503 status;
  (match member_exn "error" body with
  | Json.Obj fields -> (
    match List.assoc_opt "message" fields with
    | Some (Json.String m) ->
      let needle = addr_of fport in
      let rec has i =
        i + String.length needle <= String.length m
        && (String.sub m i (String.length needle) = needle || has (i + 1))
      in
      check Alcotest.bool "hint names the new primary" true (has 0)
    | _ -> Alcotest.fail "no error message")
  | v -> Alcotest.failf "error envelope: %s" (Json.to_string v));
  kill9 p;
  kill9 f

(* ---- Satellite: /ready on a disconnected follower --------------------------- *)

let test_ready_disconnected () =
  let dir_p = fresh_dir () in
  let dir_f = fresh_dir () in
  let p = start_child ~state_dir:dir_p [] in
  wait_ready p;
  let s1 = create_session p in
  let f = start_child ~state_dir:dir_f [ "--replica-of"; addr_of p.port ] in
  wait_ready f;
  wait_for "follower to catch up" (fun () ->
      ready_bool f "connected"
      && ready_int f "lag_records" = 0
      && session_status f s1 = 200);
  let b1 = session_body f s1 in
  let primary_before = ready_str f "primary" in
  kill9 p;
  wait_for "the disconnect to be noticed" (fun () ->
      not (ready_bool f "connected"));
  (* /ready stays 200 — a disconnected follower still serves reads — and
     reports the outage honestly: last-known lag, last-known target,
     unchanged epoch *)
  let status, _, body = http f "/ready" in
  check Alcotest.int "/ready stays 200" 200 status;
  (match member_exn "status" body with
  | Json.String "ready" -> ()
  | v -> Alcotest.failf "status: %s" (Json.to_string v));
  check Alcotest.string "still a follower" "follower" (ready_str f "role");
  check Alcotest.bool "connected false" false (ready_bool f "connected");
  check Alcotest.int "last-known lag" 0 (ready_int f "lag_records");
  check Alcotest.int "epoch unchanged" 0 (ready_int f "epoch");
  check Alcotest.string "still names the last-known primary" primary_before
    (ready_str f "primary");
  check Alcotest.string "reads keep serving" b1 (session_body f s1);
  let status, _, _ = http f ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "mutations still refused" 503 status;
  kill9 f

(* ---- Warm resync: the snapshot ships inline --------------------------------- *)

let test_warm_resync () =
  let dir_p = fresh_dir () in
  let p = start_child ~state_dir:dir_p [] in
  wait_ready p;
  let ids = List.init 3 (fun _ -> create_session p) in
  List.iter (fun id -> ignore (session_body p id)) ids;
  check Alcotest.bool "primary sessions warm" true
    (metric_int p "sessions_warm" >= 3);
  let bodies = List.map (fun id -> (id, session_body p id)) ids in
  (* a fresh follower's resync carries the warm records: its contexts are
     deserialized from the stream, never rebuilt *)
  let dir_f = fresh_dir () in
  let f = start_child ~state_dir:dir_f [ "--replica-of"; addr_of p.port ] in
  wait_ready f;
  wait_for "warm resync to land" (fun () ->
      ready_bool f "connected"
      && List.for_all (fun id -> session_status f id = 200) ids);
  check Alcotest.bool "warm records installed" true
    (repl_int f "context_snapshot_loads" >= 3);
  check Alcotest.int "no defective records" 0
    (repl_int f "context_snapshot_misses");
  check Alcotest.int "zero physical builds on the follower" 0
    (metric_int f "context_builds_full");
  check Alcotest.bool "sessions warm on arrival" true
    (metric_int f "sessions_warm" >= 3);
  List.iter
    (fun (id, b) ->
      check Alcotest.string (id ^ " byte-identical from warm resync") b
        (session_body f id))
    bodies;
  (* the opted-out follower resyncs cold and rebuilds — bodies identical *)
  let dir_f2 = fresh_dir () in
  let f2 =
    start_child ~state_dir:dir_f2
      [ "--replica-of"; addr_of p.port; "--no-context-snapshots" ]
  in
  wait_ready f2;
  wait_for "cold resync to land" (fun () ->
      ready_bool f2 "connected"
      && List.for_all (fun id -> session_status f2 id = 200) ids);
  check Alcotest.int "flag: nothing decoded" 0
    (repl_int f2 "context_snapshot_loads");
  check Alcotest.bool "flag: the rebuild path ran" true
    (metric_int f2 "context_builds_full" >= 1);
  List.iter
    (fun (id, b) ->
      check Alcotest.string (id ^ " byte-identical from cold resync") b
        (session_body f2 id))
    bodies;
  kill9 p;
  kill9 f;
  kill9 f2

(* ---- The coordinated-failover harness: 3 nodes, one SIGKILL ----------------- *)

let test_cluster_failover () =
  let dir_p = fresh_dir () in
  let dir_1 = fresh_dir () in
  let dir_2 = fresh_dir () in
  let pport = free_port () in
  let port1 = free_port () in
  let port2 = free_port () in
  let p =
    start_child ~state_dir:dir_p ~port:pport
      [ "--fsync"; "always"; "--peer"; addr_of port1; "--peer"; addr_of port2 ]
  in
  wait_ready p;
  let s1 = create_session p in
  let s2 = create_session p in
  resize_session p s1 6;
  let follower_args other =
    [ "--replica-of"; addr_of pport; "--takeover-after"; "0.75"; "--peer";
      addr_of pport; "--peer"; addr_of other ]
  in
  let f1 = start_child ~state_dir:dir_1 ~port:port1 (follower_args port2) in
  let f2 = start_child ~state_dir:dir_2 ~port:port2 (follower_args port1) in
  wait_ready f1;
  wait_ready f2;
  wait_for "both followers caught up" (fun () ->
      ready_bool f1 "connected"
      && ready_int f1 "lag_records" = 0
      && ready_bool f2 "connected"
      && ready_int f2 "lag_records" = 0
      && session_status f1 s2 = 200
      && session_status f2 s2 = 200);
  let pre = List.map (fun id -> (id, session_body p id)) [ s1; s2 ] in
  let cmp = compare_body p in
  (* the cut *)
  kill9 p;
  (* the election is deterministic: exactly one follower promotes, the
     other defers and re-points *)
  wait_for ~timeout:30. "exactly one promotion" (fun () ->
      let is_p c = ready_str c "role" = "primary" in
      is_p f1 <> is_p f2);
  let winner, survivor =
    if ready_str f1 "role" = "primary" then (f1, f2) else (f2, f1)
  in
  check Alcotest.int "one promotion, winner-side" 1
    (repl_int winner "promotions");
  check Alcotest.int "no promotion, survivor-side" 0
    (repl_int survivor "promotions");
  check Alcotest.int "the winner minted epoch 1" 1 (ready_int winner "epoch");
  wait_for ~timeout:20. "survivor re-points at the winner" (fun () ->
      ready_bool survivor "connected"
      &&
      match ready_field survivor "primary" with
      | Json.String a -> a = addr_of winner.port
      | _ -> false);
  check Alcotest.bool "re-point counted" true
    (repl_int survivor "repoints" >= 1);
  check Alcotest.int "survivor adopted the epoch" 1
    (ready_int survivor "epoch");
  wait_for ~timeout:20. "survivor caught up behind the winner" (fun () ->
      ready_int survivor "lag_records" = 0);
  (* no acked mutation lost, bytes identical across the failover *)
  List.iter
    (fun (id, b) ->
      check Alcotest.string (id ^ " byte-identical on the winner") b
        (session_body winner id);
      check Alcotest.string (id ^ " byte-identical on the survivor") b
        (session_body survivor id))
    pre;
  check Alcotest.string "/compare byte-identical on the winner" cmp
    (compare_body winner);
  check Alcotest.string "/compare byte-identical on the survivor" cmp
    (compare_body survivor);
  (* the new primary accepts writes and streams them to the survivor *)
  let s3 = create_session winner in
  wait_for ~timeout:20. "new record replicates" (fun () ->
      session_status survivor s3 = 200);
  (* revive the dead ex-primary on its old address — worst case, with no
     peer list, so it boots believing itself primary. The winner's fencer
     is still chasing this address: the revived node is demoted in
     absentia, durably, and answers mutations 409 naming the winner. *)
  let z = start_child ~state_dir:dir_p ~port:pport [ "--fsync"; "always" ] in
  wait_ready z;
  wait_for ~timeout:20. "revived ex-primary fenced" (fun () ->
      ready_str z "role" = "follower" && ready_bool z "fenced");
  check Alcotest.int "fenced at the winner's epoch" 1 (ready_int z "epoch");
  let status, _, body = http z ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "revived mutations 409" 409 status;
  assert_error_code "revived fence code" body "fenced";
  assert_int_field "revived fence epoch" body "epoch" 1;
  assert_winner_field "revived fence winner" body (addr_of winner.port);
  (* the fenced node re-joins the winner and converges to the same bytes *)
  wait_for ~timeout:20. "fenced node follows the winner" (fun () ->
      ready_bool z "connected" && session_status z s3 = 200);
  wait_for ~timeout:20. "fenced node caught up" (fun () ->
      ready_int z "lag_records" = 0);
  check Alcotest.string "/compare byte-identical on the fenced node"
    (compare_body winner) (compare_body z);
  (* the fence is durable: another restart still cannot resurrect it *)
  kill9 z;
  let z2 = start_child ~state_dir:dir_p ~port:pport [] in
  wait_ready z2;
  check Alcotest.string "fence survives the restart" "follower"
    (ready_str z2 "role");
  check Alcotest.bool "still fenced" true (ready_bool z2 "fenced");
  check Alcotest.string "winner hint survives the restart"
    (addr_of winner.port) (ready_str z2 "primary");
  kill9 z2;
  kill9 f1;
  kill9 f2

let () =
  Alcotest.run "xsact_failover"
    [
      ( "tailer",
        [
          Alcotest.test_case "offset-addressed reads" `Quick test_tailer;
          Alcotest.test_case "record-size cap" `Quick test_record_cap;
        ] );
      ( "ctxsnap",
        [
          Alcotest.test_case "roundtrip and corruption" `Quick
            test_ctxsnap_roundtrip;
          Alcotest.test_case "crash failpoints" `Quick test_ctxsnap_failpoints;
        ] );
      ( "warmboot",
        [
          Alcotest.test_case "record codec" `Quick test_warmboot_codec;
          Alcotest.test_case "snapshot warm boot" `Quick test_warm_boot;
          Alcotest.test_case "intern rewarm" `Quick test_intern_rewarm;
        ] );
      ( "stopdrain",
        [ Alcotest.test_case "flush on clean stop" `Quick test_stop_drain ] );
      ( "failover",
        [
          Alcotest.test_case "kill the primary" `Quick test_failover;
          Alcotest.test_case "auto takeover" `Quick test_auto_takeover;
          Alcotest.test_case "divergence heals" `Quick test_divergence;
        ] );
      ("b64", [ Alcotest.test_case "armor codec" `Quick test_b64 ]);
      ( "fencing",
        [
          Alcotest.test_case "durable fence" `Quick test_fencing_durable;
          Alcotest.test_case "planned handover" `Quick test_planned_handover;
          Alcotest.test_case "ready while disconnected" `Quick
            test_ready_disconnected;
          Alcotest.test_case "warm resync" `Quick test_warm_resync;
          Alcotest.test_case "cluster failover" `Quick test_cluster_failover;
        ] );
    ]
