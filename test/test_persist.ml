(* Durability tests, bottom-up: CRC vectors, journal framing and torn-tail
   repair, snapshot/compaction crash windows, the server's recovery gate —
   and the acceptance harness at the top of the stack: a real xsact-serve
   child driven over HTTP and killed with SIGKILL at failpoint-chosen
   moments (mid-append, mid-snapshot, between fsyncs), restarted on the
   same --state-dir, and required to serve every acknowledged mutation. *)

module Crc32 = Xsact_persist.Crc32
module Journal = Xsact_persist.Journal
module Store = Xsact_persist.Store
module Failpoint = Xsact_util.Failpoint
module Http = Xsact_server.Http
module Json = Xsact_server.Json
module Server = Xsact_server.Server

let check = Alcotest.check

let member_exn name body =
  match Json.of_string body with
  | Ok j -> (
    match Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "no field %S in %s" name body)
  | Error e -> Alcotest.failf "bad response JSON %s: %s" body e

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "xsact_persist_%d_%d" (Unix.getpid ()) !counter)
    in
    let _ = Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) in
    dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> -1

(* ---- CRC-32 -------------------------------------------------------------- *)

let test_crc_vectors () =
  (* the standard IEEE 802.3 check value *)
  check Alcotest.int32 "123456789" 0xCBF43926l (Crc32.string "123456789");
  check Alcotest.int32 "empty" 0l (Crc32.string "");
  check Alcotest.int32 "slice = whole" (Crc32.string "456")
    (Crc32.string ~off:3 ~len:3 "123456789");
  check Alcotest.int32 "bytes agrees" (Crc32.string "abc")
    (Crc32.bytes (Bytes.of_string "abc"));
  check Alcotest.bool "sensitive to a flipped bit" true
    (Crc32.string "abd" <> Crc32.string "abc")

(* ---- Journal framing ------------------------------------------------------ *)

let test_journal_roundtrip () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "j" in
  let j = Journal.open_append ~fsync:Journal.Always path in
  List.iter (Journal.append j) [ "alpha"; ""; "gamma with spaces" ];
  check Alcotest.int "appends counted" 3 (Journal.appends j);
  check Alcotest.int "bytes counted"
    (List.fold_left
       (fun acc p -> acc + 8 + String.length p)
       0
       [ "alpha"; ""; "gamma with spaces" ])
    (Journal.bytes_written j);
  Journal.close j;
  let r = Journal.read path in
  check
    Alcotest.(list string)
    "payloads in order"
    [ "alpha"; ""; "gamma with spaces" ]
    r.Journal.payloads;
  check Alcotest.int "nothing torn" 0 r.Journal.truncated_records;
  (* a missing file is an empty journal *)
  let r = Journal.read (Filename.concat dir "nope") in
  check Alcotest.(list string) "missing = empty" [] r.Journal.payloads

let test_journal_torn_tail () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "j" in
  let j = Journal.open_append ~fsync:Journal.Never path in
  List.iter (Journal.append j) [ "one"; "two"; "three" ];
  Journal.close j;
  let full = read_file path in
  (* cut the last record's payload short: a torn tail *)
  write_file path (String.sub full 0 (String.length full - 2));
  let r = Journal.read path in
  check Alcotest.(list string) "good prefix" [ "one"; "two" ]
    r.Journal.payloads;
  check Alcotest.int "tail counted" 1 r.Journal.truncated_records;
  check Alcotest.bool "bytes dropped" true (r.Journal.truncated_bytes > 0);
  (* repair happened on disk: a second read is clean and byte-identical *)
  let repaired = read_file path in
  let r2 = Journal.read path in
  check Alcotest.(list string) "same payloads" [ "one"; "two" ]
    r2.Journal.payloads;
  check Alcotest.int "second read sees nothing torn" 0
    r2.Journal.truncated_records;
  check Alcotest.string "file untouched by second read" repaired
    (read_file path);
  (* the repaired journal accepts new appends *)
  let j = Journal.open_append ~fsync:Journal.Never path in
  Journal.append j "four";
  Journal.close j;
  check
    Alcotest.(list string)
    "append after repair"
    [ "one"; "two"; "four" ]
    (Journal.read path).Journal.payloads

let test_journal_corruption () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "j" in
  let j = Journal.open_append ~fsync:Journal.Never path in
  List.iter (Journal.append j) [ "first"; "second"; "third" ];
  Journal.close j;
  let full = Bytes.of_string (read_file path) in
  (* flip one payload byte of the middle record: CRC must catch it, and
     framing — hence everything after — is lost with it *)
  let mid = 8 + String.length "first" + 8 in
  Bytes.set full mid (Char.chr (Char.code (Bytes.get full mid) lxor 0x40));
  write_file path (Bytes.to_string full);
  let r = Journal.read ~repair:false path in
  check Alcotest.(list string) "prefix before corruption" [ "first" ]
    r.Journal.payloads;
  check Alcotest.int "one torn tail" 1 r.Journal.truncated_records;
  (* repair:false left the file alone *)
  check Alcotest.string "no repair requested" (Bytes.to_string full)
    (read_file path);
  (* an implausible length header is torn, not allocated *)
  write_file path "\xff\xff\xff\x7f\x00\x00\x00\x00";
  let r = Journal.read path in
  check Alcotest.(list string) "absurd length rejected" [] r.Journal.payloads;
  check Alcotest.int "counted" 1 r.Journal.truncated_records

(* ---- Store: compaction and its crash windows ------------------------------ *)

let test_store_compact () =
  let dir = fresh_dir () in
  let t, r = Store.open_dir ~fsync:Journal.Never dir in
  check Alcotest.(list string) "fresh dir: no snapshot" [] r.Store.snapshot;
  check Alcotest.(list string) "fresh dir: no journal" [] r.Store.journal;
  Store.append t "op1";
  Store.append t "op2";
  Store.compact t [ "state1"; "state2" ];
  Store.append t "op3";
  check Alcotest.int "snapshot counted" 1 (Store.snapshots_total t);
  check Alcotest.int "appends survive truncation in the count" 3
    (Store.journal_appends t);
  Store.close t;
  let t2, r2 = Store.open_dir ~fsync:Journal.Never dir in
  check Alcotest.(list string) "snapshot payloads" [ "state1"; "state2" ]
    r2.Store.snapshot;
  check Alcotest.(list string) "journal since snapshot" [ "op3" ]
    r2.Store.journal;
  Store.close t2

let test_store_leftover_tmp () =
  let dir = fresh_dir () in
  let t, _ = Store.open_dir ~fsync:Journal.Never dir in
  Store.append t "op";
  Store.close t;
  (* a checkpoint that died mid-write must be ignored and removed *)
  write_file (Filename.concat dir "snapshot.tmp") "half-written garbage";
  let t2, r = Store.open_dir ~fsync:Journal.Never dir in
  check Alcotest.(list string) "journal intact" [ "op" ] r.Store.journal;
  check Alcotest.bool "tmp removed" false
    (Sys.file_exists (Filename.concat dir "snapshot.tmp"));
  Store.close t2

let test_store_crash_windows () =
  (* die before the rename: old state wins; die after the rename but
     before the journal truncation: new snapshot + stale journal — the
     caller's idempotent fold absorbs the replay *)
  let dir = fresh_dir () in
  let t, _ = Store.open_dir ~fsync:Journal.Never dir in
  Store.append t "op1";
  Failpoint.reset ();
  Failpoint.enable "persist.snapshot.rename" Failpoint.Fail;
  (match Store.compact t [ "snapA" ] with
  | () -> Alcotest.fail "failpoint did not fire"
  | exception Failpoint.Injected _ -> ());
  Failpoint.reset ();
  Store.close t;
  let t, r = Store.open_dir ~fsync:Journal.Never dir in
  check Alcotest.(list string) "pre-rename crash: no snapshot" []
    r.Store.snapshot;
  check Alcotest.(list string) "pre-rename crash: journal intact" [ "op1" ]
    r.Store.journal;
  Failpoint.enable "persist.snapshot.truncate" Failpoint.Fail;
  (match Store.compact t [ "snapB" ] with
  | () -> Alcotest.fail "failpoint did not fire"
  | exception Failpoint.Injected _ -> ());
  Failpoint.reset ();
  Store.close t;
  let t, r = Store.open_dir ~fsync:Journal.Never dir in
  check Alcotest.(list string) "post-rename crash: new snapshot" [ "snapB" ]
    r.Store.snapshot;
  check Alcotest.(list string) "post-rename crash: stale journal replays"
    [ "op1" ] r.Store.journal;
  Store.close t

(* ---- In-process server: recovery gate and round-trips --------------------- *)

let request ?(meth = "GET") ?(headers = []) ?(body = "") target =
  let path, query = Http.split_target target in
  { Http.meth; target; path; query; headers; body }

let create_body = {|{"dataset":"product-reviews","q":"gps","top":3}|}

let test_server_readiness () =
  let dir = fresh_dir () in
  let t = Server.create ~datasets:[ "product-reviews" ] ~state_dir:dir () in
  let resp = Server.handle t (request "/ready") in
  check Alcotest.int "unrecovered: /ready 503" 503 resp.Http.status;
  let resp = Server.handle t (request "/health") in
  check Alcotest.int "liveness stays 200" 200 resp.Http.status;
  let resp = Server.handle t (request "/datasets") in
  check Alcotest.int "routes gated 503" 503 resp.Http.status;
  check Alcotest.(option string) "retry-after set" (Some "1")
    (List.assoc_opt "Retry-After" resp.Http.resp_headers);
  Server.recover t;
  let resp = Server.handle t (request "/ready") in
  check Alcotest.int "recovered: /ready 200" 200 resp.Http.status;
  let resp = Server.handle t (request "/datasets") in
  check Alcotest.int "routes open" 200 resp.Http.status;
  (* without a state dir the gate never exists *)
  let t = Server.create ~datasets:[ "product-reviews" ] () in
  let resp = Server.handle t (request "/ready") in
  check Alcotest.int "no state dir: born ready" 200 resp.Http.status

let test_server_roundtrip () =
  let dir = fresh_dir () in
  let t = Server.create ~datasets:[ "product-reviews" ] ~state_dir:dir () in
  Server.recover t;
  let handle ?meth ?body target = Server.handle t (request ?meth ?body target) in
  let resp = handle ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "s1 created" 201 resp.Http.status;
  let resp = handle ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "s2 created" 201 resp.Http.status;
  let resp =
    handle ~meth:"POST" ~body:{|{"size_bound":6}|} "/session/s2/size"
  in
  check Alcotest.int "s2 resized" 200 resp.Http.status;
  let s1_body = (handle "/session/s1").Http.resp_body in
  (* a second server on the same directory serves the same sessions *)
  let t2 = Server.create ~datasets:[ "product-reviews" ] ~state_dir:dir () in
  Server.recover t2;
  let handle2 ?meth ?body target =
    Server.handle t2 (request ?meth ?body target)
  in
  check Alcotest.string "s1 byte-identical after recovery" s1_body
    (handle2 "/session/s1").Http.resp_body;
  (match member_exn "size_bound" (handle2 "/session/s2").Http.resp_body with
  | Json.Int 6 -> ()
  | v -> Alcotest.failf "s2 size_bound not recovered: %s" (Json.to_string v));
  (match member_exn "durability" (handle2 "/metrics").Http.resp_body with
  | Json.Obj fields ->
    check
      Alcotest.(option int)
      "two sessions recovered" (Some 2)
      (match List.assoc_opt "recovered_sessions" fields with
      | Some (Json.Int n) -> Some n
      | _ -> None)
  | v -> Alcotest.failf "no durability metrics: %s" (Json.to_string v));
  (* ids continue, never reuse *)
  (match member_exn "id" (handle2 ~meth:"POST" ~body:create_body "/session")
           .Http.resp_body
   with
  | Json.String "s3" -> ()
  | v -> Alcotest.failf "expected s3, got %s" (Json.to_string v));
  (* deletion is durable too *)
  let resp = handle2 ~meth:"DELETE" "/session/s1" in
  check Alcotest.int "s1 deleted" 200 resp.Http.status;
  let t3 = Server.create ~datasets:[ "product-reviews" ] ~state_dir:dir () in
  Server.recover t3;
  let resp = Server.handle t3 (request "/session/s1") in
  check Alcotest.int "s1 stays deleted" 404 resp.Http.status;
  let resp = Server.handle t3 (request "/session/s2") in
  check Alcotest.int "s2 survives" 200 resp.Http.status

(* ---- The kill -9 harness -------------------------------------------------- *)

let serve_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "xsact_serve.exe"

type child = { pid : int; port : int; out_fd : Unix.file_descr }

(* Start a real xsact-serve child and parse its port off stdout. [env_extra]
   arms failpoints in the child only (XSACT_FAILPOINTS=...). *)
let start_child ?(env_extra = []) ~state_dir args =
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let argv =
    Array.of_list
      ([ serve_exe; "--port"; "0"; "--dataset"; "product-reviews";
         "--state-dir"; state_dir ]
      @ args)
  in
  let env =
    Array.append (Unix.environment ()) (Array.of_list env_extra)
  in
  let pid =
    Unix.create_process_env serve_exe argv env Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  (* read the listening line, bounded so a wedged child fails the test
     instead of hanging the suite *)
  let parse_port s =
    let marker = "http://127.0.0.1:" in
    let mlen = String.length marker in
    let rec find i =
      if i + mlen > String.length s then None
      else if String.sub s i mlen = marker then Some (i + mlen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
      let stop = ref start in
      while
        !stop < String.length s
        && match s.[!stop] with '0' .. '9' -> true | _ -> false
      do
        incr stop
      done;
      if !stop > start then
        int_of_string_opt (String.sub s start (!stop - start))
      else None
  in
  let buf = Buffer.create 256 in
  let deadline = Unix.gettimeofday () +. 30. in
  let port = ref None in
  let chunk = Bytes.create 4096 in
  while !port = None && Unix.gettimeofday () < deadline do
    match Unix.select [ out_r ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ ->
      let n = Unix.read out_r chunk 0 (Bytes.length chunk) in
      if n = 0 then (
        Unix.kill pid Sys.sigkill;
        Alcotest.failf "child exited before listening: %s"
          (Buffer.contents buf))
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        port := parse_port (Buffer.contents buf)
      end
  done;
  match !port with
  | None ->
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    Alcotest.failf "no listening line from child: %s" (Buffer.contents buf)
  | Some port -> { pid; port; out_fd = out_r }

let wait_ready child =
  let deadline = Unix.gettimeofday () +. 30. in
  let rec go () =
    let ready =
      match
        Http.request ~host:"127.0.0.1" ~port:child.port "/ready"
      with
      | 200, _, _ -> true
      | _ -> false
      | exception (Unix.Unix_error _ | Failure _) -> false
    in
    if ready then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "child never became ready"
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let kill9 child =
  Unix.kill child.pid Sys.sigkill;
  ignore (Unix.waitpid [] child.pid);
  (try Unix.close child.out_fd with Unix.Unix_error _ -> ())

let http child ?meth ?body target =
  Http.request ~host:"127.0.0.1" ~port:child.port ?meth ?body target

(* The test's own ledger of acknowledged state: id -> (size_bound, ranks).
   After every restart, each entry must be served back. *)
let assert_sessions child expected =
  List.iter
    (fun (id, size_bound, ranks) ->
      let status, _, body = http child ("/session/" ^ id) in
      check Alcotest.int (id ^ " recovered") 200 status;
      (match member_exn "size_bound" body with
      | Json.Int n ->
        check Alcotest.int (id ^ " size_bound") size_bound n
      | v -> Alcotest.failf "%s size_bound: %s" id (Json.to_string v));
      match member_exn "ranks" body with
      | Json.List vs ->
        check
          Alcotest.(list int)
          (id ^ " ranks") ranks
          (List.filter_map Json.to_int vs)
      | v -> Alcotest.failf "%s ranks: %s" id (Json.to_string v))
    expected

let durability_stat child name =
  let _, _, metrics = http child "/metrics" in
  match member_exn "durability" metrics with
  | Json.Obj fields -> (
    match List.assoc_opt name fields with
    | Some (Json.Int n) -> n
    | v ->
      Alcotest.failf "durability.%s: %s" name
        (match v with Some v -> Json.to_string v | None -> "missing"))
  | v -> Alcotest.failf "durability: %s" (Json.to_string v)

let create_session child =
  let status, _, body = http child ~meth:"POST" ~body:create_body "/session" in
  check Alcotest.int "create acked" 201 status;
  match member_exn "id" body with
  | Json.String id -> id
  | v -> Alcotest.failf "session id: %s" (Json.to_string v)

let resize_session child id size_bound =
  let status, _, _ =
    http child ~meth:"POST"
      ~body:(Printf.sprintf {|{"size_bound":%d}|} size_bound)
      ("/session/" ^ id ^ "/size")
  in
  check Alcotest.int "resize acked" 200 status

(* Fire one request and deliberately never read the response, so the op is
   sent but not acknowledged; returns the open socket so it outlives the
   child being killed while parked on a failpoint mid-mutation. *)
let send_unacked child body target =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, child.port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock addr;
  let oc = Unix.out_channel_of_descr sock in
  Http.send_request oc ~host:"127.0.0.1" ~meth:"POST" ~body target;
  sock

let wait_for ?(timeout = 10.) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let test_kill9_harness () =
  let dir = fresh_dir () in
  let journal_path = Filename.concat dir "journal" in

  (* Cycle 1: mutations acked between fsyncs (interval far longer than the
     run), then SIGKILL. A process-only crash keeps the page cache, so
     everything acked must recover even though nothing was fsynced. *)
  let c1 = start_child ~state_dir:dir [ "--fsync"; "interval:600" ] in
  wait_ready c1;
  let s1 = create_session c1 in
  let s2 = create_session c1 in
  resize_session c1 s1 6;
  kill9 c1;

  (* Cycle 2: clean recovery, then one more acked session. *)
  let c2 = start_child ~state_dir:dir [ "--fsync"; "always" ] in
  wait_ready c2;
  check Alcotest.int "no torn records after clean kill" 0
    (durability_stat c2 "recovery_truncated_records");
  check Alcotest.int "both sessions recovered" 2
    (durability_stat c2 "recovered_sessions");
  assert_sessions c2 [ (s1, 6, [ 1; 2; 3 ]); (s2, 8, [ 1; 2; 3 ]) ];
  let s3 = create_session c2 in
  kill9 c2;

  (* Cycle 3: park the journal append between its header and payload
     writes and SIGKILL the child there — a manufactured torn tail. The
     op was never acknowledged, so losing it is correct; mangling the
     records before it would not be. *)
  let c3 =
    start_child ~state_dir:dir
      ~env_extra:[ "XSACT_FAILPOINTS=persist.append.tear=sleep:600" ]
      [ "--fsync"; "never" ]
  in
  wait_ready c3;
  assert_sessions c3
    [ (s1, 6, [ 1; 2; 3 ]); (s2, 8, [ 1; 2; 3 ]); (s3, 8, [ 1; 2; 3 ]) ];
  let before = file_size journal_path in
  let sock = send_unacked c3 create_body "/session" in
  wait_for "torn header to land" (fun () ->
      file_size journal_path >= before + 8);
  kill9 c3;
  Unix.close sock;

  (* Recovery of the torn directory is idempotent: recover a copy twice;
     the first pass truncates the tail, the second finds nothing to do
     and the files stay byte-identical. *)
  let copy = fresh_dir () in
  let _ =
    Sys.command
      (Printf.sprintf "cp -r %s %s" (Filename.quote dir) (Filename.quote copy))
  in
  let t, r = Store.open_dir ~fsync:Journal.Never copy in
  check Alcotest.int "copy: torn tail found" 1 r.Store.truncated_records;
  Store.close t;
  let j1 = read_file (Filename.concat copy "journal") in
  let t, r = Store.open_dir ~fsync:Journal.Never copy in
  check Alcotest.int "copy: second recovery clean" 0 r.Store.truncated_records;
  Store.close t;
  check Alcotest.string "copy: second recovery byte-identical" j1
    (read_file (Filename.concat copy "journal"));

  (* Cycle 4: the torn tail is dropped and counted; every acked mutation
     is still served; the torn create's id was never acked so it may be
     minted again. *)
  let c4 = start_child ~state_dir:dir [] in
  wait_ready c4;
  check Alcotest.int "torn tail counted in /metrics" 1
    (durability_stat c4 "recovery_truncated_records");
  assert_sessions c4
    [ (s1, 6, [ 1; 2; 3 ]); (s2, 8, [ 1; 2; 3 ]); (s3, 8, [ 1; 2; 3 ]) ];
  let status, _, _ = http c4 "/session/s4" in
  check Alcotest.int "torn session never existed" 404 status;
  let s4 = create_session c4 in
  check Alcotest.string "unacked id reminted" "s4" s4;
  kill9 c4;

  (* Cycle 5: SIGKILL mid-snapshot, before the atomic rename. The
     checkpoint dies as snapshot.tmp; the journal still has everything. *)
  let c5 =
    start_child ~state_dir:dir
      ~env_extra:[ "XSACT_FAILPOINTS=persist.snapshot.rename=sleep:600" ]
      [ "--snapshot-every"; "1" ]
  in
  wait_ready c5;
  let sock = send_unacked c5 {|{"size_bound":10}|} ("/session/" ^ s1 ^ "/size") in
  wait_for "tmp checkpoint to appear" (fun () ->
      Sys.file_exists (Filename.concat dir "snapshot.tmp"));
  kill9 c5;
  Unix.close sock;

  (* Cycle 6: the aborted checkpoint is discarded; the journaled (if
     unacked) resize replays. Then SIGKILL in the other snapshot crash
     window: after the rename, before the journal truncation. *)
  let c6 =
    start_child ~state_dir:dir
      ~env_extra:[ "XSACT_FAILPOINTS=persist.snapshot.truncate=sleep:600" ]
      [ "--snapshot-every"; "1" ]
  in
  wait_ready c6;
  check Alcotest.bool "aborted checkpoint discarded" false
    (Sys.file_exists (Filename.concat dir "snapshot.tmp"));
  assert_sessions c6
    [ (s1, 10, [ 1; 2; 3 ]); (s2, 8, [ 1; 2; 3 ]);
      (s3, 8, [ 1; 2; 3 ]); (s4, 8, [ 1; 2; 3 ]) ];
  let sock = send_unacked c6 {|{"size_bound":5}|} ("/session/" ^ s2 ^ "/size") in
  wait_for "renamed snapshot to appear" (fun () ->
      Sys.file_exists (Filename.concat dir "snapshot")
      && file_size (Filename.concat dir "snapshot") > 0);
  kill9 c6;
  Unix.close sock;

  (* Cycle 7: new snapshot + stale journal replays idempotently. *)
  let c7 = start_child ~state_dir:dir [] in
  wait_ready c7;
  assert_sessions c7
    [ (s1, 10, [ 1; 2; 3 ]); (s2, 5, [ 1; 2; 3 ]);
      (s3, 8, [ 1; 2; 3 ]); (s4, 8, [ 1; 2; 3 ]) ];
  kill9 c7;

  (* Rapid kill/restart churn: each lap mutates, dies, and must find the
     previous lap's acked mutation on boot. *)
  let expected = ref 10 in
  for lap = 1 to 3 do
    let c = start_child ~state_dir:dir [ "--fsync"; "interval:0.01" ] in
    wait_ready c;
    assert_sessions c [ (s1, !expected, [ 1; 2; 3 ]) ];
    let next = 4 + lap in
    resize_session c s1 next;
    expected := next;
    kill9 c
  done;
  let c = start_child ~state_dir:dir [] in
  wait_ready c;
  assert_sessions c [ (s1, !expected, [ 1; 2; 3 ]) ];
  kill9 c;
  let _ = Sys.command (Printf.sprintf "rm -rf %s %s" (Filename.quote dir)
                         (Filename.quote copy)) in
  ()

let () =
  Alcotest.run "xsact_persist"
    [
      ("crc32", [ Alcotest.test_case "vectors" `Quick test_crc_vectors ]);
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail repair" `Quick test_journal_torn_tail;
          Alcotest.test_case "corruption" `Quick test_journal_corruption;
        ] );
      ( "store",
        [
          Alcotest.test_case "compaction" `Quick test_store_compact;
          Alcotest.test_case "leftover tmp" `Quick test_store_leftover_tmp;
          Alcotest.test_case "crash windows" `Quick test_store_crash_windows;
        ] );
      ( "server",
        [
          Alcotest.test_case "readiness gate" `Quick test_server_readiness;
          Alcotest.test_case "recovery roundtrip" `Quick test_server_roundtrip;
        ] );
      ( "kill9",
        [ Alcotest.test_case "crash-restart cycles" `Quick test_kill9_harness ]
      );
    ]
