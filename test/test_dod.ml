(* Tests for the Degree-of-Differentiation objective: differentiability
   semantics, threshold edge cases, raw vs. rate measures, pair tables,
   incremental deltas, and the paper's DoD algebra. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let f ~e ~a ~v = Feature.make ~entity:e ~attribute:a ~value:v

let profile label ?(populations = []) features =
  Result_profile.make ~label ~populations features

let find p ~e ~a =
  Option.get (Result_profile.find_type p { Feature.entity = e; attribute = a })

(* Full DFS: everything selected (within a generous limit). *)
let full p = Topk.generate_one ~limit:1000 p

(* ---- Differentiability semantics --------------------------------------- *)

(* Same type, same single feature, equal counts: NOT differentiable. *)
let test_equal_counts_not_differentiable () =
  let p1 = profile "A" [ (f ~e:"m" ~a:"genre" ~v:"Action", 3) ] in
  let p2 = profile "B" [ (f ~e:"m" ~a:"genre" ~v:"Action", 3) ] in
  let c = Dod.make_context [| p1; p2 |] in
  check Alcotest.int "dod 0" 0 (Dod.total c [| full p1; full p2 |])

(* Different values of a shared type: differentiable (absent counts as 0). *)
let test_different_values_differentiable () =
  let p1 = profile "A" [ (f ~e:"m" ~a:"title" ~v:"Alpha", 1) ] in
  let p2 = profile "B" [ (f ~e:"m" ~a:"title" ~v:"Beta", 1) ] in
  let c = Dod.make_context [| p1; p2 |] in
  check Alcotest.int "dod 1" 1 (Dod.total c [| full p1; full p2 |])

(* Unshared types never differentiate ("null means unknown"). *)
let test_unshared_type_not_comparable () =
  let p1 = profile "A" [ (f ~e:"m" ~a:"alpha" ~v:"x", 5) ] in
  let p2 = profile "B" [ (f ~e:"m" ~a:"beta" ~v:"y", 5) ] in
  let c = Dod.make_context [| p1; p2 |] in
  check Alcotest.int "dod 0" 0 (Dod.total c [| full p1; full p2 |])

(* The 10% threshold: 10 vs 11 differs by 1 = 10% of 10, NOT more than 10%.
   10 vs 12 differs by 2 = 20% > 10%. *)
let test_threshold_edge () =
  let make a b =
    let p1 = profile "A" [ (f ~e:"r" ~a:"pro" ~v:"yes", a) ] in
    let p2 = profile "B" [ (f ~e:"r" ~a:"pro" ~v:"yes", b) ] in
    let c = Dod.make_context [| p1; p2 |] in
    Dod.total c [| full p1; full p2 |]
  in
  check Alcotest.int "10 vs 11 below threshold" 0 (make 10 11);
  check Alcotest.int "10 vs 12 above threshold" 1 (make 10 12);
  check Alcotest.int "equal" 0 (make 7 7)

let test_threshold_zero_pct () =
  let params = { Dod.threshold_pct = 0.0; measure = Dod.Raw } in
  let p1 = profile "A" [ (f ~e:"r" ~a:"pro" ~v:"yes", 10) ] in
  let p2 = profile "B" [ (f ~e:"r" ~a:"pro" ~v:"yes", 11) ] in
  let c = Dod.make_context ~params [| p1; p2 |] in
  check Alcotest.int "any difference counts at x=0" 1
    (Dod.total c [| full p1; full p2 |]);
  let c2 =
    Dod.make_context ~params [| profile "A" [ (f ~e:"r" ~a:"p" ~v:"y", 5) ];
                                profile "B" [ (f ~e:"r" ~a:"p" ~v:"y", 5) ] |]
  in
  let p1' = (Dod.results c2).(0) and p2' = (Dod.results c2).(1) in
  check Alcotest.int "equal still 0 at x=0" 0
    (Dod.total c2 [| full p1'; full p2' |])

(* Rate measure: 8/11 vs 38/68 -> 73% vs 56%: differentiable; raw also. But
   5/10 vs 10/20 -> both 50%: rate says no, raw says yes. *)
let test_rate_vs_raw () =
  let p1 =
    profile "A" ~populations:[ ("r", 10) ] [ (f ~e:"r" ~a:"pro" ~v:"yes", 5) ]
  in
  let p2 =
    profile "B" ~populations:[ ("r", 20) ] [ (f ~e:"r" ~a:"pro" ~v:"yes", 10) ]
  in
  let raw = Dod.make_context [| p1; p2 |] in
  check Alcotest.int "raw sees 5 vs 10" 1 (Dod.total raw [| full p1; full p2 |]);
  let rate =
    Dod.make_context ~params:{ Dod.threshold_pct = 10.0; measure = Dod.Rate }
      [| p1; p2 |]
  in
  check Alcotest.int "rate sees 50% vs 50%" 0
    (Dod.total rate [| full p1; full p2 |])

(* Both sides must select the type: q = 0 on either side kills it. *)
let test_requires_both_selected () =
  let p1 = profile "A" [ (f ~e:"m" ~a:"title" ~v:"Alpha", 1) ] in
  let p2 = profile "B" [ (f ~e:"m" ~a:"title" ~v:"Beta", 1) ] in
  let c = Dod.make_context [| p1; p2 |] in
  check Alcotest.int "one side empty" 0
    (Dod.total c [| Dfs.empty p1; full p2 |])

(* A gap feature selected only on ONE side still differentiates, as long as
   the other side selects the type at all. *)
let test_gap_via_other_side () =
  let p1 =
    profile "A"
      [ (f ~e:"m" ~a:"genre" ~v:"Action", 1); (f ~e:"m" ~a:"genre" ~v:"Drama", 1) ]
  in
  let p2 =
    profile "B"
      [ (f ~e:"m" ~a:"genre" ~v:"Action", 1); (f ~e:"m" ~a:"genre" ~v:"Western", 1) ]
  in
  let c = Dod.make_context [| p1; p2 |] in
  let gi1 = find p1 ~e:"m" ~a:"genre" in
  let gi2 = find p2 ~e:"m" ~a:"genre" in
  (* D1 selects only Action (q=1, the canonical head); D2 selects both.
     Drama/Western (selected in D2's prefix) witness the gap. *)
  let d1 = Dfs.set_q (Dfs.empty p1) gi1 1 in
  let d2 = Dfs.set_q (Dfs.empty p2) gi2 2 in
  check Alcotest.int "other-side witness" 1 (Dod.total c [| d1; d2 |]);
  (* With q=1 on both sides, the only visible feature is Action (equal):
     not differentiable. *)
  let d2' = Dfs.set_q (Dfs.empty p2) gi2 1 in
  check Alcotest.int "equal heads only" 0 (Dod.total c [| d1; d2' |])

(* ---- Multi-result DoD algebra -------------------------------------------- *)

let three_results () =
  let p1 =
    profile "R1"
      [ (f ~e:"m" ~a:"title" ~v:"A", 1); (f ~e:"m" ~a:"year" ~v:"1999", 1) ]
  in
  let p2 =
    profile "R2"
      [ (f ~e:"m" ~a:"title" ~v:"B", 1); (f ~e:"m" ~a:"year" ~v:"1999", 1) ]
  in
  let p3 =
    profile "R3"
      [ (f ~e:"m" ~a:"title" ~v:"C", 1); (f ~e:"m" ~a:"year" ~v:"2005", 1) ]
  in
  (p1, p2, p3)

let test_total_is_sum_of_pairs () =
  let p1, p2, p3 = three_results () in
  let c = Dod.make_context [| p1; p2; p3 |] in
  let dfss = [| full p1; full p2; full p3 |] in
  let pairwise =
    Dod.dod_pair c ~i:0 ~j:1 dfss.(0) dfss.(1)
    + Dod.dod_pair c ~i:0 ~j:2 dfss.(0) dfss.(2)
    + Dod.dod_pair c ~i:1 ~j:2 dfss.(1) dfss.(2)
  in
  check Alcotest.int "total = sum of pairs" pairwise (Dod.total c dfss);
  (* titles differ on all 3 pairs; years differ on pairs (1,3) and (2,3) *)
  check Alcotest.int "expected value" 5 (Dod.total c dfss)

let test_dod_pair_symmetric () =
  let p1, p2, _ = three_results () in
  let c = Dod.make_context [| p1; p2 |] in
  let d1 = full p1 and d2 = full p2 in
  check Alcotest.int "symmetric"
    (Dod.dod_pair c ~i:0 ~j:1 d1 d2)
    (Dod.dod_pair c ~i:1 ~j:0 d2 d1)

let test_upper_bound () =
  let p1, p2, p3 = three_results () in
  let c = Dod.make_context [| p1; p2; p3 |] in
  check Alcotest.int "pair 0-1: only title can differ" 1
    (Dod.upper_bound_pair c ~i:0 ~j:1);
  check Alcotest.int "pair 0-2: both types" 2 (Dod.upper_bound_pair c ~i:0 ~j:2)

(* The bound is the total WEIGHT of the differentiable types, not their
   count, and it dominates the weighted dod_pair of any DFS pair. *)
let test_upper_bound_weighted () =
  let p1, p2, p3 = three_results () in
  let weight ft = if ft.Feature.attribute = "title" then 3 else 2 in
  let c = Dod.make_context ~weight [| p1; p2; p3 |] in
  check Alcotest.int "pair 0-1: only title can differ" 3
    (Dod.upper_bound_pair c ~i:0 ~j:1);
  check Alcotest.int "pair 0-2: title + year" 5
    (Dod.upper_bound_pair c ~i:0 ~j:2);
  let dfss = [| full p1; full p2; full p3 |] in
  for i = 0 to 1 do
    for j = i + 1 to 2 do
      let pair = Dod.dod_pair c ~i ~j dfss.(i) dfss.(j) in
      let bound = Dod.upper_bound_pair c ~i ~j in
      if pair > bound then
        Alcotest.failf "pair %d-%d: dod %d exceeds bound %d" i j pair bound
    done
  done

(* ---- Links and thresholds -------------------------------------------------- *)

let test_links_and_threshold_q () =
  let p1 =
    profile "A"
      [
        (f ~e:"m" ~a:"genre" ~v:"Action", 1);
        (f ~e:"m" ~a:"genre" ~v:"Drama", 1);
      ]
  in
  let p2 = profile "B" [ (f ~e:"m" ~a:"genre" ~v:"Action", 1) ] in
  let c = Dod.make_context [| p1; p2 |] in
  let gi1 = find p1 ~e:"m" ~a:"genre" in
  (match Dod.links c ~i:0 ~gi:gi1 with
  | [ link ] ->
    check Alcotest.int "other" 1 link.Dod.other;
    (* A's features: Action (equal, no gap), Drama (gap) -> first gap at 2.
       B's only feature Action has no gap -> infinity. *)
    check Alcotest.int "gap_self" 2 link.Dod.gap_self;
    check Alcotest.bool "gap_other infinite" true
      (link.Dod.gap_other = Dod.infinity_gap);
    (* If B selects genre (q_other=1), A needs q >= 2. *)
    check Alcotest.int "threshold with other selected" 2
      (Dod.threshold_q link ~q_other:1);
    check Alcotest.bool "impossible when other empty" true
      (Dod.threshold_q link ~q_other:0 = Dod.infinity_gap)
  | l -> Alcotest.failf "expected 1 link, got %d" (List.length l));
  check Alcotest.int "no links for absent pair type" 0
    (List.length (Dod.links c ~i:1 ~gi:(find p2 ~e:"m" ~a:"genre") |> List.filter (fun l -> l.Dod.other = 1)))

(* ---- delta_for_type consistency (property) --------------------------------- *)

let prop_delta_consistent =
  QCheck.Test.make ~name:"delta_for_type = recomputed total difference"
    ~count:200
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 1 6)))
    (fun (seed, _) ->
      let profiles =
        Xsact_workload.Workload.synthetic_profiles ~seed ~results:3 ~entities:2
          ~types_per_entity:3 ~values_per_type:3 ~max_count:5
      in
      let c = Dod.make_context profiles in
      let dfss = Topk.generate c ~limit:4 in
      (* Try every single-type change on result 0 and check the delta. *)
      let p0 = profiles.(0) in
      let ok = ref true in
      for gi = 0 to Result_profile.num_types p0 - 1 do
        let old_q = Dfs.q dfss.(0) gi in
        let info = Result_profile.type_info p0 gi in
        let max_q = Array.length info.Result_profile.features in
        for new_q = 0 to max_q do
          let delta =
            Dod.delta_for_type c ~dfss ~i:0 ~gi ~old_q ~new_q
          in
          let before = Dod.total c dfss in
          let changed = Array.copy dfss in
          changed.(0) <- Dfs.set_q dfss.(0) gi new_q;
          let after = Dod.total c changed in
          if delta <> after - before then ok := false
        done
      done;
      !ok)

let prop_dod_monotone_in_selection =
  QCheck.Test.make ~name:"adding features never decreases DoD" ~count:200
    QCheck.(make Gen.(int_range 0 1000000))
    (fun seed ->
      let profiles =
        Xsact_workload.Workload.synthetic_profiles ~seed ~results:2 ~entities:2
          ~types_per_entity:3 ~values_per_type:3 ~max_count:5
      in
      let c = Dod.make_context profiles in
      let small = Topk.generate c ~limit:3 in
      let big =
        Array.map2
          (fun d p -> Topk.fill ~limit:6 (Dfs.of_q_array p (Dfs.to_q_array d)))
          small profiles
      in
      Dod.total c big >= Dod.total c small)

let test_witness_and_explain () =
  let p1 =
    profile "A" ~populations:[ ("r", 11) ]
      [
        (f ~e:"r" ~a:"compact" ~v:"yes", 8);
        (f ~e:"r" ~a:"same" ~v:"x", 5);
      ]
  in
  let p2 =
    profile "B" ~populations:[ ("r", 68) ]
      [
        (f ~e:"r" ~a:"compact" ~v:"yes", 38);
        (f ~e:"r" ~a:"same" ~v:"x", 5);
      ]
  in
  let c = Dod.make_context [| p1; p2 |] in
  let d1 = full p1 and d2 = full p2 in
  let gi = find p1 ~e:"r" ~a:"compact" in
  (match Dod.witness c ~i:0 ~j:1 d1 d2 ~gi with
  | Some w ->
    check Alcotest.string "witness value" "yes" w.Dod.feature.Feature.value;
    check (Alcotest.float 0.001) "measure i" 8.0 w.Dod.measure_i;
    check (Alcotest.float 0.001) "measure j" 38.0 w.Dod.measure_j
  | None -> Alcotest.fail "compact should differentiate");
  let gi_same = find p1 ~e:"r" ~a:"same" in
  check Alcotest.bool "equal type has no witness" true
    (Dod.witness c ~i:0 ~j:1 d1 d2 ~gi:gi_same = None);
  (* explain_pair lists exactly the differentiating types. *)
  let explained = Dod.explain_pair c ~i:0 ~j:1 d1 d2 in
  check Alcotest.int "one explanation" 1 (List.length explained);
  (* rendered form *)
  let text = Render_text.explanations c [| d1; d2 |] in
  check Alcotest.bool "mentions pair and measures" true
    (Xsact_util.Textutil.contains_substring text "A vs B on r.compact")
  ;
  check Alcotest.bool "mentions 8 vs 38" true
    (Xsact_util.Textutil.contains_substring text "8 vs 38");
  (* under the rate measure the witness reports rates *)
  let crate =
    Dod.make_context ~params:{ Dod.threshold_pct = 10.0; measure = Dod.Rate }
      [| p1; p2 |]
  in
  match Dod.witness crate ~i:0 ~j:1 d1 d2 ~gi with
  | Some w ->
    check (Alcotest.float 0.001) "rate i" (8.0 /. 11.0) w.Dod.measure_i;
    check (Alcotest.float 0.001) "rate j" (38.0 /. 68.0) w.Dod.measure_j
  | None -> Alcotest.fail "rate measure also differentiates"

(* Under uniform weights, the explanation list has exactly DoD(D_i,D_j)
   entries, and every witness's measures actually clear the threshold. *)
let prop_explanations_consistent =
  QCheck.Test.make ~name:"explain_pair count = dod_pair; witnesses gap"
    ~count:150
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 2 6)))
    (fun (seed, limit) ->
      let profiles =
        Xsact_workload.Workload.synthetic_profiles ~seed ~results:2 ~entities:2
          ~types_per_entity:3 ~values_per_type:3 ~max_count:6
      in
      let c = Dod.make_context profiles in
      let dfss = Multi_swap.generate c ~limit in
      let explained = Dod.explain_pair c ~i:0 ~j:1 dfss.(0) dfss.(1) in
      List.length explained = Dod.dod_pair c ~i:0 ~j:1 dfss.(0) dfss.(1)
      && List.for_all
           (fun (_, (w : Dod.witness)) ->
             let diff = Float.abs (w.Dod.measure_i -. w.Dod.measure_j) in
             diff > 0.1 *. Float.min w.Dod.measure_i w.Dod.measure_j
             && diff > 0.0)
           explained)

let test_context_arity_errors () =
  let p1 = profile "A" [ (f ~e:"m" ~a:"t" ~v:"x", 1) ] in
  Alcotest.check_raises "needs two results"
    (Invalid_argument "Dod.make_context: need at least two results") (fun () ->
      ignore (Dod.make_context [| p1 |]));
  let p2 = profile "B" [ (f ~e:"m" ~a:"t" ~v:"y", 1) ] in
  let c = Dod.make_context [| p1; p2 |] in
  Alcotest.check_raises "total arity"
    (Invalid_argument "Dod.total: arity mismatch") (fun () ->
      ignore (Dod.total c [| full p1 |]))

let () =
  Alcotest.run "xsact_dod"
    [
      ( "differentiability",
        [
          Alcotest.test_case "equal counts" `Quick
            test_equal_counts_not_differentiable;
          Alcotest.test_case "different values" `Quick
            test_different_values_differentiable;
          Alcotest.test_case "unshared types" `Quick
            test_unshared_type_not_comparable;
          Alcotest.test_case "10% threshold edge" `Quick test_threshold_edge;
          Alcotest.test_case "x = 0" `Quick test_threshold_zero_pct;
          Alcotest.test_case "rate vs raw" `Quick test_rate_vs_raw;
          Alcotest.test_case "both sides must select" `Quick
            test_requires_both_selected;
          Alcotest.test_case "other-side witness" `Quick test_gap_via_other_side;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "total = sum of pairs" `Quick
            test_total_is_sum_of_pairs;
          Alcotest.test_case "pair symmetry" `Quick test_dod_pair_symmetric;
          Alcotest.test_case "upper bound" `Quick test_upper_bound;
          Alcotest.test_case "upper bound (weighted)" `Quick
            test_upper_bound_weighted;
          Alcotest.test_case "arity errors" `Quick test_context_arity_errors;
        ] );
      ( "links",
        [
          Alcotest.test_case "links and threshold_q" `Quick
            test_links_and_threshold_q;
          Alcotest.test_case "witness and explain" `Quick
            test_witness_and_explain;
        ] );
      ( "properties",
        [
          qtest prop_delta_consistent;
          qtest prop_dod_monotone_in_selection;
          qtest prop_explanations_consistent;
        ] );
    ]
