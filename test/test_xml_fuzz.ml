(* Fuzz smoke for the xmlkit parsers: seeded random bytes, markup-shaped
   noise, and mutations of valid documents are driven through both
   [Xml_parse.parse_string] (the DOM) and [Xml_sax.fold] (the event
   stream). Every input must come back as [Ok] or a located [Error] —
   never an escaping exception, never a hang. The corpus is
   deterministic (seeded {!Xsact_util.Prng}), so a failure reproduces
   bit-for-bit; [XSACT_FUZZ_ITERS] scales the budget (CI runs a bigger
   one than the default). *)

module Prng = Xsact_util.Prng

let iters =
  match Sys.getenv_opt "XSACT_FUZZ_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 300)
  | None -> 300

(* Per-input latency bound: a parser that is merely slow on 400-byte
   garbage is a bug worth failing on, long before the harness timeout. *)
let max_seconds_per_input = 5.0

let check = Alcotest.check

(* ---- Input generators ------------------------------------------------------ *)

(* arbitrary bytes, nuls and high bytes included *)
let gen_raw prng =
  let len = Prng.int_in prng 0 400 in
  String.init len (fun _ -> Char.chr (Prng.int_in prng 0 255))

(* markup-shaped noise: heavy in the bytes the tokenizer branches on *)
let markup_alphabet = "<>/=\"'&;!?[]-# \n\tabcdexmlCDATA0123456789"

let gen_markupish prng =
  let len = Prng.int_in prng 0 400 in
  String.init len (fun _ ->
      markup_alphabet.[Prng.int_in prng 0 (String.length markup_alphabet - 1)])

(* valid seeds for the mutation generator — each exercises a different
   construct (attributes, CDATA, comments, PIs, entities, nesting) *)
let seeds =
  [|
    {|<?xml version="1.0"?><catalog><item id="1" price="9.99">GPS &amp; maps</item><item id="2"/></catalog>|};
    {|<a><b c="d &lt;e&gt;"><![CDATA[raw <bytes> &amp; stuff]]></b><!-- note --><?pi data?></a>|};
    {|<r>&#65;&#x42; text &quot;quoted&quot; &apos;tick&apos;</r>|};
    {|<deep><deep><deep><deep><deep>leaf</deep></deep></deep></deep></deep>|};
    "<s>\n  <t>  spaced  </t>\n  <u/>\n</s>";
  |]

let mutate prng src =
  let b = Buffer.create (String.length src + 16) in
  Buffer.add_string b src;
  let s = Bytes.of_string (Buffer.contents b) in
  let n = Bytes.length s in
  if n = 0 then " "
  else begin
    let out = ref (Bytes.to_string s) in
    let rounds = Prng.int_in prng 1 4 in
    for _ = 1 to rounds do
      let cur = !out in
      let n = String.length cur in
      if n > 0 then
        match Prng.int_in prng 0 4 with
        | 0 ->
          (* flip one byte *)
          let i = Prng.int_in prng 0 (n - 1) in
          let by = Bytes.of_string cur in
          Bytes.set by i (Char.chr (Prng.int_in prng 0 255));
          out := Bytes.to_string by
        | 1 ->
          (* delete a span *)
          let i = Prng.int_in prng 0 (n - 1) in
          let len = min (n - i) (Prng.int_in prng 1 8) in
          out := String.sub cur 0 i ^ String.sub cur (i + len) (n - i - len)
        | 2 ->
          (* insert random bytes *)
          let i = Prng.int_in prng 0 n in
          let ins =
            String.init (Prng.int_in prng 1 6) (fun _ ->
                Char.chr (Prng.int_in prng 0 255))
          in
          out := String.sub cur 0 i ^ ins ^ String.sub cur i (n - i)
        | 3 ->
          (* truncate *)
          out := String.sub cur 0 (Prng.int_in prng 0 (n - 1))
        | _ ->
          (* splice a chunk of another seed in *)
          let other = seeds.(Prng.int_in prng 0 (Array.length seeds - 1)) in
          let m = String.length other in
          let oi = Prng.int_in prng 0 (m - 1) in
          let olen = min (m - oi) (Prng.int_in prng 1 20) in
          let i = Prng.int_in prng 0 n in
          out :=
            String.sub cur 0 i ^ String.sub other oi olen
            ^ String.sub cur i (n - i)
    done;
    !out
  end

(* ---- The harness ----------------------------------------------------------- *)

(* Run one input through both parsers. The only acceptable outcomes are
   [Ok] and a located [Error]; and because the DOM is built over the SAX
   scan, a DOM [Ok] with a SAX [Error] is a layering bug. *)
let drive input =
  let started = Unix.gettimeofday () in
  let dom =
    match Xml_parse.parse_string input with
    | Ok _ -> true
    | Error _ -> false
    | exception e ->
      Alcotest.failf "parse_string raised %s on %S" (Printexc.to_string e)
        input
  in
  let sax =
    match
      Xml_sax.fold input ~init:0 ~f:(fun n (_ : Xml_sax.event) -> n + 1)
    with
    | Ok _ -> true
    | Error _ -> false
    | exception e ->
      Alcotest.failf "Xml_sax.fold raised %s on %S" (Printexc.to_string e)
        input
  in
  if dom && not sax then
    Alcotest.failf "DOM accepted what SAX rejected: %S" input;
  let elapsed = Unix.gettimeofday () -. started in
  if elapsed > max_seconds_per_input then
    Alcotest.failf "parsing %d bytes took %.1fs (input %S...)"
      (String.length input) elapsed
      (String.sub input 0 (min 40 (String.length input)))

let test_fixed_nasties () =
  List.iter drive
    [
      "";
      "<";
      ">";
      "<a";
      "<a>";
      "<a></b>";
      "<a/><b/>";
      "<a b=></a>";
      "<a b='1' b='2'/>";
      "<!DOCTYPE";
      "<!DOCTYPE foo [ <!ENTITY x \"y\"> ]><a>&x;</a>";
      "<?";
      "<?xml?>";
      "<?xml version=\"1.0\"";
      "<![CDATA[";
      "<a><![CDATA[never closed</a>";
      "]]>";
      "<a>]]></a>";
      "&amp;";
      "<a>&unknown;</a>";
      "<a>&#xFFFFFFFFFFFFFF;</a>";
      "<a>&#0;</a>";
      "<a>&#;</a>";
      "<!---->";
      "<a><!-- -- --></a>";
      "<a\x00b/>";
      "\xff\xfe<a/>";
      "<a " ^ String.make 300 'x' ^ "='y'/>";
      "<a>" ^ String.make 3000 '&' ^ "</a>";
    ];
  (* nesting past max_depth is a located error, not a stack overflow *)
  let deep = Buffer.create 65536 in
  for _ = 1 to 5000 do
    Buffer.add_string deep "<d>"
  done;
  Buffer.add_string deep "x";
  for _ = 1 to 5000 do
    Buffer.add_string deep "</d>"
  done;
  (match Xml_parse.parse_string (Buffer.contents deep) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "5000-deep nesting parsed past max_depth"
  | exception e ->
    Alcotest.failf "deep nesting raised %s" (Printexc.to_string e));
  (* ...and a raised max_depth really does admit deeper documents *)
  match Xml_parse.parse_string ~max_depth:6000 (Buffer.contents deep) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deep parse at max_depth=6000: %s"
                 (Xml_parse.error_to_string e)
  | exception e ->
    Alcotest.failf "deep parse raised %s" (Printexc.to_string e)

let test_seeds_parse () =
  (* the mutation seeds themselves must be valid, or the mutator is
     fuzzing nothing *)
  Array.iter
    (fun s ->
      match Xml_parse.parse_string s with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "seed %S rejected: %s" s (Xml_parse.error_to_string e))
    seeds

let test_fuzz_raw () =
  let prng = Prng.of_int 0xda7a in
  for _ = 1 to iters do
    drive (gen_raw prng)
  done

let test_fuzz_markupish () =
  let prng = Prng.of_int 0x3a91 in
  for _ = 1 to iters do
    drive (gen_markupish prng)
  done

let test_fuzz_mutations () =
  let prng = Prng.of_int 0xbeef in
  for _ = 1 to iters do
    let seed = seeds.(Prng.int_in prng 0 (Array.length seeds - 1)) in
    drive (mutate prng seed)
  done;
  (* sanity: a run of unmutated seeds through the same driver *)
  Array.iter drive seeds;
  check Alcotest.bool "budget consumed" true (iters > 0)

let () =
  Alcotest.run "xsact_xml_fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "fixed nasties" `Quick test_fixed_nasties;
          Alcotest.test_case "seeds are valid" `Quick test_seeds_parse;
          Alcotest.test_case "raw bytes" `Quick test_fuzz_raw;
          Alcotest.test_case "markup-shaped noise" `Quick test_fuzz_markupish;
          Alcotest.test_case "seed mutations" `Quick test_fuzz_mutations;
        ] );
    ]
