(* Edge-case coverage sweeps: small behaviors not exercised elsewhere. *)

let check = Alcotest.check
let contains = Xsact_util.Textutil.contains_substring

let f ~e ~a ~v = Feature.make ~entity:e ~attribute:a ~value:v

(* ---- util edges ----------------------------------------------------------- *)

let test_grid_truncation () =
  let open Xsact_util in
  let g = Grid.create ~max_col_width:8 () in
  Grid.add_row g [ "abcdefghijklmnop"; "x" ];
  let out = Grid.render g in
  check Alcotest.bool "middle-truncated" true (contains out "...");
  check Alcotest.bool "bounded" true
    (String.length (List.hd (String.split_on_char '\n' out)) < 20)

let test_sampling_single () =
  let open Xsact_util in
  let g = Prng.of_int 3 in
  check Alcotest.int "zipf n=1" 0 (Sampling.zipf g ~n:1 ~s:2.0);
  check Alcotest.int "weighted single" 7 (Sampling.weighted g [ (7, 1.0) ]);
  let arr = [| 42 |] in
  Sampling.shuffle g arr;
  check Alcotest.int "shuffle singleton" 42 arr.(0)

let test_dewey_pp () =
  check Alcotest.string "pp" "1.2"
    (Format.asprintf "%a" Dewey.pp (Dewey.of_list [ 1; 2 ]));
  Alcotest.check_raises "negative component"
    (Invalid_argument "Dewey.of_list: negative component") (fun () ->
      ignore (Dewey.of_list [ 1; -2 ]))

let test_stats_pp () =
  let doc =
    Result.get_ok (Xml_parse.parse_string "<a><b>x</b></a>")
  in
  let s = Format.asprintf "%a" Xml_stats.pp (Xml_stats.of_document doc) in
  check Alcotest.bool "mentions elements" true (contains s "elements: 2")

(* ---- feature/profile edges ---------------------------------------------------- *)

let test_single_feature_profile () =
  let p =
    Result_profile.make ~label:"solo" ~populations:[]
      [ (f ~e:"x" ~a:"only" ~v:"v", 1) ]
  in
  check Alcotest.int "one type" 1 (Result_profile.num_types p);
  let d = Topk.generate_one ~limit:5 p in
  check Alcotest.int "fills to total" 1 (Dfs.size d);
  check Alcotest.bool "valid" true (Dfs.is_valid ~limit:5 d)

let test_dod_identical_profiles () =
  (* Comparing a result against an identical copy: nothing differentiates,
     whatever the algorithm. *)
  let mk label =
    Result_profile.make ~label ~populations:[ ("r", 5) ]
      [
        (f ~e:"r" ~a:"a" ~v:"x", 3);
        (f ~e:"r" ~a:"b" ~v:"y", 2);
      ]
  in
  let c = Dod.make_context [| mk "A"; mk "B" |] in
  List.iter
    (fun alg ->
      check Alcotest.int
        (Algorithm.to_string alg ^ " finds nothing")
        0
        (Dod.total c (Algorithm.generate alg c ~limit:4)))
    Algorithm.practical

let test_imdb_list_roman () =
  check Alcotest.bool "qualifier 11 round-trips" true
    (match
       Xsact_dataset.Imdb_list.(
         parse_key
           (key
              {
                title = "T"; year = 2000; qualifier = 11; runtime = 1;
                rating = 1.0; votes = 1; certificate = ""; color = "";
                company = ""; country = ""; language = ""; genres = [];
                directors = []; actors = []; keywords = [];
              }))
     with
    | Some ("T", 2000, 11) -> true
    | _ -> false)

let test_session_stats_chain () =
  let profiles =
    Array.to_list
      (Xsact_workload.Workload.synthetic_profiles ~seed:2 ~results:3
         ~entities:1 ~types_per_entity:4 ~values_per_type:2 ~max_count:3)
  in
  match Session.create ~size_bound:4 profiles with
  | Error e -> Alcotest.failf "create: %s" (Error.to_string e)
  | Ok s ->
    let n0 = Session.stats s in
    let s2 = Result.get_ok (Session.set_size_bound s 6) in
    check Alcotest.bool "counter grows along history" true
      (Session.stats s2 > n0 - 1)

let test_render_html_default_title () =
  let profiles = Xsact_workload.Workload.paper_gps_profiles () in
  let c = Dod.make_context profiles in
  let table = Table.build c (Multi_swap.generate c ~limit:4) in
  check Alcotest.bool "default title" true
    (contains (Render_html.table table) "XSACT comparison table")

let test_search_empty_corpus_shapes () =
  let doc = Result.get_ok (Xml_parse.parse_string "<empty/>") in
  let engine = Search.create doc in
  check Alcotest.int "no results" 0 (List.length (Search.query engine "x"));
  check Alcotest.int "empty query" 0 (List.length (Search.query engine " .,"))

let test_weighting_zero () =
  (* Zero weight makes a type worthless but not illegal. *)
  let p1 =
    Result_profile.make ~label:"A" ~populations:[]
      [ (f ~e:"m" ~a:"t" ~v:"x", 1) ]
  in
  let p2 =
    Result_profile.make ~label:"B" ~populations:[]
      [ (f ~e:"m" ~a:"t" ~v:"y", 1) ]
  in
  let c = Dod.make_context ~weight:(fun _ -> 0) [| p1; p2 |] in
  let dfss = Multi_swap.generate c ~limit:2 in
  check Alcotest.int "weighted DoD 0" 0 (Dod.total c dfss);
  Array.iter
    (fun d -> check Alcotest.bool "still fills" true (Dfs.size d = 1))
    dfss

let test_snippet_limit_zero_and_large () =
  let p =
    Result_profile.make ~label:"P" ~populations:[]
      [ (f ~e:"e" ~a:"a" ~v:"x", 2); (f ~e:"e" ~a:"b" ~v:"y", 1) ]
  in
  check Alcotest.int "limit 0" 0 (List.length (Snippet.generate ~limit:0 p));
  check Alcotest.int "limit beyond total" 2
    (List.length (Snippet.generate ~limit:99 p))

let () =
  Alcotest.run "xsact_edges"
    [
      ( "util",
        [
          Alcotest.test_case "grid truncation" `Quick test_grid_truncation;
          Alcotest.test_case "sampling singletons" `Quick test_sampling_single;
          Alcotest.test_case "dewey pp/errors" `Quick test_dewey_pp;
          Alcotest.test_case "stats pp" `Quick test_stats_pp;
        ] );
      ( "core",
        [
          Alcotest.test_case "single-feature profile" `Quick
            test_single_feature_profile;
          Alcotest.test_case "identical profiles" `Quick
            test_dod_identical_profiles;
          Alcotest.test_case "zero weights" `Quick test_weighting_zero;
          Alcotest.test_case "snippet limits" `Quick
            test_snippet_limit_zero_and_large;
          Alcotest.test_case "session stats" `Quick test_session_stats_chain;
          Alcotest.test_case "html default title" `Quick
            test_render_html_default_title;
        ] );
      ( "misc",
        [
          Alcotest.test_case "imdb roman qualifiers" `Quick test_imdb_list_roman;
          Alcotest.test_case "singleton corpus" `Quick
            test_search_empty_corpus_shapes;
        ] );
    ]
