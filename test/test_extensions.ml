(* Tests for the extension features: weighted DoD ("interestingness"),
   built-in weightings, the stochastic optimizers, and interactive
   comparison sessions. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let f ~e ~a ~v = Feature.make ~entity:e ~attribute:a ~value:v

let synthetic ~seed ~results =
  Xsact_workload.Workload.synthetic_profiles ~seed ~results ~entities:2
    ~types_per_entity:3 ~values_per_type:2 ~max_count:4

(* ---- Weighted DoD ---------------------------------------------------------- *)

let two_type_profiles () =
  let mk label title year =
    Result_profile.make ~label ~populations:[]
      [
        (f ~e:"m" ~a:"title" ~v:title, 1);
        (f ~e:"m" ~a:"year" ~v:year, 1);
      ]
  in
  [| mk "A" "Alpha" "1999"; mk "B" "Beta" "2005" |]

let test_weighted_total () =
  let profiles = two_type_profiles () in
  let weight (t : Feature.ftype) = if t.Feature.attribute = "title" then 5 else 1 in
  let c = Dod.make_context ~weight profiles in
  let full = Array.map (fun p -> Topk.generate_one ~limit:10 p) profiles in
  (* title differentiates (weight 5) + year differentiates (weight 1). *)
  check Alcotest.int "weighted total" 6 (Dod.total c full);
  let uniform = Dod.make_context profiles in
  check Alcotest.int "uniform total" 2 (Dod.total uniform full)

let test_weighted_negative_rejected () =
  let profiles = two_type_profiles () in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Dod.make_context: negative weight") (fun () ->
      ignore (Dod.make_context ~weight:(fun _ -> -1) profiles))

let test_weighted_steering () =
  (* Two competing types fit in a budget of 1: with a heavy weight on
     "year", every algorithm must choose year over title. *)
  let mk label title year =
    Result_profile.make ~label ~populations:[]
      [
        (f ~e:"m" ~a:"title" ~v:title, 1);
        (f ~e:"m" ~a:"year" ~v:year, 1);
      ]
  in
  let profiles = [| mk "A" "Alpha" "1999"; mk "B" "Beta" "2005" |] in
  let weight (t : Feature.ftype) = if t.Feature.attribute = "year" then 10 else 1 in
  let c = Dod.make_context ~weight profiles in
  List.iter
    (fun alg ->
      let dfss = Algorithm.generate alg c ~limit:1 in
      let year_gi p =
        Option.get
          (Result_profile.find_type p { Feature.entity = "m"; attribute = "year" })
      in
      Array.iteri
        (fun i d ->
          check Alcotest.bool
            (Algorithm.to_string alg ^ " picks year")
            true
            (Dfs.q d (year_gi (Dod.results c).(i)) = 1))
        dfss)
    [ Algorithm.Single_swap; Algorithm.Multi_swap ]

let prop_weighted_consistency =
  (* delta_for_type remains exact under random weights. *)
  QCheck.Test.make ~name:"weighted delta_for_type consistent" ~count:150
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 1 5)))
    (fun (seed, wseed) ->
      let profiles = synthetic ~seed ~results:3 in
      let weight (t : Feature.ftype) =
        1 + ((Hashtbl.hash (t, wseed)) mod 4)
      in
      let c = Dod.make_context ~weight profiles in
      let dfss = Topk.generate c ~limit:4 in
      let ok = ref true in
      let p0 = profiles.(0) in
      for gi = 0 to Result_profile.num_types p0 - 1 do
        let old_q = Dfs.q dfss.(0) gi in
        let max_q = Array.length (Result_profile.type_info p0 gi).features in
        for new_q = 0 to max_q do
          let delta = Dod.delta_for_type c ~dfss ~i:0 ~gi ~old_q ~new_q in
          let changed = Array.copy dfss in
          changed.(0) <- Dfs.set_q dfss.(0) gi new_q;
          if delta <> Dod.total c changed - Dod.total c dfss then ok := false
        done
      done;
      !ok)

(* ---- Weighting helpers ------------------------------------------------------ *)

let test_weighting_helpers () =
  let t ~e ~a : Feature.ftype = { Feature.entity = e; attribute = a } in
  check Alcotest.int "uniform" 1 (Weighting.uniform (t ~e:"x" ~a:"y"));
  let w = Weighting.by_attribute [ ("price", 3); ("battery", 2) ] in
  check Alcotest.int "price matched" 3 (w (t ~e:"product" ~a:"price"));
  check Alcotest.int "substring matched" 2
    (w (t ~e:"review" ~a:"pro:long-battery-life"));
  check Alcotest.int "default" 1 (w (t ~e:"product" ~a:"name"));
  let we = Weighting.by_entity ~default:0 [ ("review", 2) ] in
  check Alcotest.int "entity matched" 2 (we (t ~e:"review" ~a:"x"));
  check Alcotest.int "entity default" 0 (we (t ~e:"product" ~a:"x"))

let test_weighting_evidence () =
  let profiles = Xsact_workload.Workload.paper_gps_profiles () in
  let w = Weighting.evidence profiles in
  (* satellites has significance 44 -> weight 1 + floor(log2 44) = 6. *)
  check Alcotest.int "high evidence" 6
    (w { Feature.entity = "review"; attribute = "pro:acquires-satellites-quickly" });
  (* product name: significance 1 -> weight 1. *)
  check Alcotest.int "unit evidence" 1
    (w { Feature.entity = "product"; attribute = "name" });
  check Alcotest.int "unknown type" 1
    (w { Feature.entity = "zz"; attribute = "zz" })

(* ---- Stochastic optimizers --------------------------------------------------- *)

let test_random_valid_dfs () =
  let g = Xsact_util.Prng.of_int 5 in
  let profiles = synthetic ~seed:1 ~results:1 in
  for limit = 1 to 8 do
    let d = Stochastic.random_valid_dfs g ~limit profiles.(0) in
    check Alcotest.bool "valid" true (Dfs.is_valid ~limit d);
    check Alcotest.int "fills budget"
      (min limit profiles.(0).Result_profile.total_features)
      (Dfs.size d)
  done

let test_anneal_quality () =
  let profiles = synthetic ~seed:3 ~results:3 in
  let c = Dod.make_context profiles in
  let annealed = Stochastic.anneal c ~limit:5 in
  Array.iter
    (fun d -> check Alcotest.bool "valid" true (Dfs.is_valid ~limit:5 d))
    annealed;
  (* The polish step guarantees at least local optimality; sanity: at least
     the topk value. *)
  let topk = Dod.total c (Topk.generate c ~limit:5) in
  check Alcotest.bool "anneal >= topk" true (Dod.total c annealed >= topk);
  (* Deterministic given the seed. *)
  let again = Stochastic.anneal c ~limit:5 in
  check Alcotest.bool "deterministic" true
    (Array.for_all2 Dfs.equal annealed again)

let test_restarts_quality () =
  let profiles = synthetic ~seed:9 ~results:3 in
  let c = Dod.make_context profiles in
  let restarted = Stochastic.restarts ~rounds:4 c ~limit:5 in
  let single = Dod.total c (Single_swap.generate c ~limit:5) in
  (* Restarts include the plain single-swap run, so can only be >= it. *)
  check Alcotest.bool "restarts >= single-swap" true
    (Dod.total c restarted >= single);
  Array.iter
    (fun d -> check Alcotest.bool "valid" true (Dfs.is_valid ~limit:5 d))
    restarted

(* ---- Sessions ------------------------------------------------------------------ *)

let session_profiles n =
  Array.to_list
    (Xsact_workload.Workload.synthetic_profiles ~seed:77 ~results:n ~entities:1
       ~types_per_entity:5 ~values_per_type:3 ~max_count:2)

let create_ok ?(algorithm = Algorithm.Multi_swap) profiles ~size_bound =
  let config = Config.(default |> with_algorithm algorithm) in
  match Session.create ~config ~size_bound profiles with
  | Ok s -> s
  | Error e -> Alcotest.failf "session create: %s" (Error.to_string e)

let test_session_create () =
  let s = create_ok (session_profiles 3) ~size_bound:4 in
  check Alcotest.int "three results" 3 (Array.length (Session.profiles s));
  check Alcotest.int "L" 4 (Session.size_bound s);
  check Alcotest.bool "positive dod" true (Session.dod s > 0);
  check Alcotest.int "table columns" 3
    (Array.length (Session.table s).Table.labels);
  (match Session.create ~size_bound:4 [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty session accepted");
  match
    Session.create
      ~config:Config.(default |> with_algorithm Algorithm.Exhaustive)
      ~size_bound:4 (session_profiles 2)
  with
  | Error (Error.Unsupported_algorithm "exhaustive") -> ()
  | Error e -> Alcotest.failf "wrong variant: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "exhaustive session accepted"

let test_session_add_remove () =
  let all = session_profiles 4 in
  let first3 = List.filteri (fun i _ -> i < 3) all in
  let s = create_ok first3 ~size_bound:4 in
  let s4 = Session.add s (List.nth all 3) in
  check Alcotest.int "four results" 4 (Array.length (Session.profiles s4));
  (* Warm-started result equals the cold computation's DoD (both are
     multi-swap optima over the same inputs; values must match the cold run
     exactly here because the instance is small). *)
  let cold = create_ok all ~size_bound:4 in
  check Alcotest.bool "warm dod >= cold topk baseline" true
    (Session.dod s4 >= Session.dod cold - 2);
  (* Remove back down. *)
  (match Session.remove s4 3 with
  | Ok s3 ->
    check Alcotest.int "back to three" 3 (Array.length (Session.profiles s3));
    check Alcotest.int "same profiles" 3 (Array.length (Session.dfss s3))
  | Error e -> Alcotest.failf "remove: %s" (Error.to_string e));
  (match Session.remove s4 9 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out of range accepted");
  let s2 = create_ok (List.filteri (fun i _ -> i < 2) all) ~size_bound:4 in
  match Session.remove s2 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dropped below two results"

let test_session_resize () =
  let s = create_ok (session_profiles 3) ~size_bound:3 in
  (match Session.set_size_bound s 6 with
  | Ok bigger ->
    check Alcotest.bool "dod grows or stays" true
      (Session.dod bigger >= Session.dod s);
    Array.iter
      (fun d -> check Alcotest.bool "valid at 6" true (Dfs.is_valid ~limit:6 d))
      (Session.dfss bigger);
    (match Session.set_size_bound bigger 2 with
    | Ok smaller ->
      Array.iter
        (fun d ->
          check Alcotest.bool "valid at 2" true (Dfs.is_valid ~limit:2 d))
        (Session.dfss smaller)
    | Error e -> Alcotest.failf "shrink: %s" (Error.to_string e))
  | Error e -> Alcotest.failf "grow: %s" (Error.to_string e));
  match Session.set_size_bound s 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "L=0 accepted"

let prop_session_matches_direct =
  (* A fresh session's state equals running the algorithm directly. *)
  QCheck.Test.make ~name:"fresh session = direct multi-swap" ~count:60
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 2 6)))
    (fun (seed, limit) ->
      let profiles = synthetic ~seed ~results:3 in
      match Session.create ~size_bound:limit (Array.to_list profiles) with
      | Error _ -> false
      | Ok s ->
        let c = Dod.make_context profiles in
        Session.dod s = Dod.total c (Multi_swap.generate c ~limit))

let test_session_warm_start_counts () =
  let s = create_ok (session_profiles 3) ~size_bound:4 in
  let before = Session.stats s in
  let s' = Session.add s (List.nth (session_profiles 4) 3) in
  check Alcotest.bool "one more run" true (Session.stats s' = before + 1)

let () =
  Alcotest.run "xsact_extensions"
    [
      ( "weighted-dod",
        [
          Alcotest.test_case "weighted total" `Quick test_weighted_total;
          Alcotest.test_case "negative rejected" `Quick
            test_weighted_negative_rejected;
          Alcotest.test_case "steering" `Quick test_weighted_steering;
          qtest prop_weighted_consistency;
        ] );
      ( "weighting",
        [
          Alcotest.test_case "helpers" `Quick test_weighting_helpers;
          Alcotest.test_case "evidence" `Quick test_weighting_evidence;
        ] );
      ( "stochastic",
        [
          Alcotest.test_case "random valid dfs" `Quick test_random_valid_dfs;
          Alcotest.test_case "annealing" `Quick test_anneal_quality;
          Alcotest.test_case "restarts" `Quick test_restarts_quality;
        ] );
      ( "session",
        [
          Alcotest.test_case "create" `Quick test_session_create;
          Alcotest.test_case "add/remove" `Quick test_session_add_remove;
          Alcotest.test_case "resize" `Quick test_session_resize;
          Alcotest.test_case "warm-start counter" `Quick
            test_session_warm_start_counts;
          qtest prop_session_matches_direct;
        ] );
    ]
