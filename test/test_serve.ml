(* Tests for the HTTP comparison service: protocol units (request parsing,
   JSON round-trips, routing, LRU eviction), typed-request handling through
   Server.handle without sockets, and an end-to-end socket test with
   concurrent clients exercising the comparison cache. *)

module Http = Xsact_server.Http
module Json = Xsact_server.Json
module Router = Xsact_server.Router
module Lru = Xsact_server.Lru
module Api = Xsact_server.Api
module Server = Xsact_server.Server

let check = Alcotest.check

let request ?(meth = "GET") ?(headers = []) ?(body = "") target =
  let path, query = Http.split_target target in
  { Http.meth; target; path; query; headers; body }

(* ---- HTTP parsing ---------------------------------------------------------- *)

let test_request_line () =
  check
    Alcotest.(result (pair string string) reject)
    "simple"
    (Ok ("GET", "/health"))
    (Http.parse_request_line "GET /health HTTP/1.1");
  check
    Alcotest.(result (pair string string) reject)
    "lowercase verb is uppercased"
    (Ok ("POST", "/compare"))
    (Http.parse_request_line "post /compare HTTP/1.0");
  let bad line =
    match Http.parse_request_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  bad "GET /x HTTP/2";
  bad "GET /x";
  bad "";
  bad "GET  /x HTTP/1.1"

let test_header_line () =
  check
    Alcotest.(result (pair string string) reject)
    "lowercased name, trimmed value"
    (Ok ("content-length", "42"))
    (Http.parse_header_line "Content-Length:  42 ");
  (match Http.parse_header_line "no colon here" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted header without colon");
  match Http.parse_header_line ": empty name" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted empty header name"

let test_split_target () =
  let path, query = Http.split_target "/search?q=gps+golf&lift_to=%2Fa" in
  check Alcotest.(list string) "path" [ "search" ] path;
  check
    Alcotest.(list (pair string string))
    "query decoded"
    [ ("q", "gps golf"); ("lift_to", "/a") ]
    query;
  let path, query = Http.split_target "/session/s1/add" in
  check Alcotest.(list string) "nested path" [ "session"; "s1"; "add" ] path;
  check Alcotest.(list (pair string string)) "no query" [] query;
  let path, _ = Http.split_target "/" in
  check Alcotest.(list string) "root" [] path;
  check Alcotest.string "malformed escape passes through" "100%!"
    (Http.url_decode "100%!")

(* ---- JSON ------------------------------------------------------------------ *)

let json : Json.t Alcotest.testable =
  Alcotest.testable (fun ppf v -> Format.pp_print_string ppf (Json.to_string v)) ( = )

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "tom \"quote\" \\slash\n");
        ("count", Json.Int (-42));
        ("score", Json.Float 1.5);
        ("flags", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []);
                              ("empty_obj", Json.Obj []) ]);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> check json "roundtrip" v v'
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  check Alcotest.string "deterministic print"
    {|{"b":1,"a":[2,3.5,"x"]}|}
    (Json.to_string
       (Json.Obj
          [
            ("b", Json.Int 1);
            ("a", Json.List [ Json.Int 2; Json.Float 3.5; Json.String "x" ]);
          ]))

let test_json_parse () =
  let ok src v =
    match Json.of_string src with
    | Ok v' -> check json src v v'
    | Error e -> Alcotest.failf "%s: %s" src e
  in
  ok {| {"a": 1, "b": [true, null], "c": "\u0041"} |}
    (Json.Obj
       [
         ("a", Json.Int 1);
         ("b", Json.List [ Json.Bool true; Json.Null ]);
         ("c", Json.String "A");
       ]);
  ok "3.25e2" (Json.Float 325.);
  ok "-7" (Json.Int (-7));
  let bad src =
    match Json.of_string src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" src
  in
  bad "{\"a\": }";
  bad "[1, 2";
  bad "tru";
  bad "1 2";
  bad "\"raw \x01 control\"";
  bad ""

(* ---- Router ---------------------------------------------------------------- *)

let test_router_params () =
  check
    Alcotest.(option (list (pair string string)))
    "binds params"
    (Some [ ("id", "s7") ])
    (Router.match_pattern "session/:id/add" [ "session"; "s7"; "add" ]);
  check
    Alcotest.(option (list (pair string string)))
    "literal mismatch" None
    (Router.match_pattern "session/:id/add" [ "session"; "s7"; "remove" ]);
  check
    Alcotest.(option (list (pair string string)))
    "length mismatch" None
    (Router.match_pattern "session/:id" [ "session" ]);
  check
    Alcotest.(option (list (pair string string)))
    "root pattern" (Some [])
    (Router.match_pattern "" [])

let test_router_dispatch () =
  let handler _req _params = Http.response ~status:200 "{}" in
  let routes =
    [
      Router.route ~meth:"GET" ~pattern:"health" handler;
      Router.route ~meth:"POST" ~pattern:"compare" handler;
      Router.route ~meth:"GET" ~pattern:"session/:id" handler;
      Router.route ~meth:"DELETE" ~pattern:"session/:id" handler;
    ]
  in
  (match Router.dispatch routes (request "/health") with
  | `Matched ("GET /health", _, []) -> ()
  | _ -> Alcotest.fail "GET /health should match");
  (match Router.dispatch routes (request ~meth:"DELETE" "/session/s2") with
  | `Matched ("DELETE /session/:id", _, [ ("id", "s2") ]) -> ()
  | _ -> Alcotest.fail "DELETE /session/s2 should match with params");
  (match Router.dispatch routes (request ~meth:"GET" "/compare") with
  | `Method_not_allowed [ "POST" ] -> ()
  | _ -> Alcotest.fail "GET /compare should be 405 allowing POST");
  match Router.dispatch routes (request "/nope") with
  | `Not_found -> ()
  | _ -> Alcotest.fail "/nope should be 404"

(* ---- LRU ------------------------------------------------------------------- *)

let test_lru_eviction () =
  let lru = Lru.create ~capacity:3 in
  Lru.add lru "a" 1;
  Lru.add lru "b" 2;
  Lru.add lru "c" 3;
  check Alcotest.(list string) "mru order" [ "c"; "b"; "a" ] (Lru.keys_mru lru);
  (* touching "a" protects it from the next eviction *)
  check Alcotest.(option int) "hit" (Some 1) (Lru.find lru "a");
  Lru.add lru "d" 4;
  check
    Alcotest.(list string)
    "b evicted as LRU" [ "d"; "a"; "c" ] (Lru.keys_mru lru);
  check Alcotest.(option int) "evicted" None (Lru.find lru "b");
  check Alcotest.int "length" 3 (Lru.length lru);
  check Alcotest.int "hits" 1 (Lru.hits lru);
  check Alcotest.int "misses" 1 (Lru.misses lru);
  (* replacing refreshes recency without growing *)
  Lru.add lru "c" 33;
  check Alcotest.(list string) "replace bumps" [ "c"; "d"; "a" ] (Lru.keys_mru lru);
  check Alcotest.(option int) "replaced value" (Some 33) (Lru.find lru "c")

(* ---- Typed request / canonical key ------------------------------------------ *)

let decode_exn body =
  match Json.of_string body with
  | Error e -> Alcotest.failf "bad test JSON: %s" e
  | Ok j -> (
    match Api.decode_compare j with
    | Ok r -> r
    | Error e -> Alcotest.failf "decode failed: %s" e)

(* The canonical key format is a wire contract (journals and caches
   compare keys across releases), so the goldens pin the exact rendering
   — field order, separators, %g floats, sorted weight rules — not just
   equality relations. *)
let test_canonical_key_normalization () =
  let a =
    decode_exn
      {|{"dataset":"product-reviews","q":"  GPS ","weights":{"price":3,"battery":2}}|}
  in
  let b =
    decode_exn
      {|{"dataset":"product-reviews","q":"gps","top":4,"size_bound":8,
         "algorithm":"multi-swap","threshold_pct":10.0,"measure":"raw",
         "weights":{"battery":2,"price":3}}|}
  in
  check Alcotest.string "golden full-scope key"
    "ds=product-reviews&q=gps&sel=top4&k=8&alg=multi-swap&thr=10&measure=raw&w=battery:2,price:3&domains=default"
    (Api.canonical_key ~scope:Api.Full a);
  check Alcotest.string "golden context-scope key"
    "ds=product-reviews&q=gps&sel=top4&thr=10&measure=raw&w=battery:2,price:3"
    (Api.canonical_key ~scope:Api.Context a);
  check Alcotest.string "case/whitespace/rule-order insensitive"
    (Api.canonical_key ~scope:Api.Full a)
    (Api.canonical_key ~scope:Api.Full b);
  let c =
    decode_exn
      {|{"dataset":"product-reviews","q":"gps","algorithm":"greedy",
         "weights":{"price":3,"battery":2}}|}
  in
  if
    Api.canonical_key ~scope:Api.Full a = Api.canonical_key ~scope:Api.Full c
  then Alcotest.fail "different algorithm must change the full-scope key";
  check Alcotest.string
    "algorithm is outside context scope (pair tables don't depend on it)"
    (Api.canonical_key ~scope:Api.Context a)
    (Api.canonical_key ~scope:Api.Context c);
  let d =
    decode_exn {|{"dataset":"product-reviews","q":"gps","select":[1,3]}|}
  in
  check Alcotest.string "golden explicit-selection context key"
    "ds=product-reviews&q=gps&sel=1,3&thr=10&measure=raw&w="
    (Api.canonical_key ~scope:Api.Context d);
  if
    Api.canonical_key ~scope:Api.Full a = Api.canonical_key ~scope:Api.Full d
  then Alcotest.fail "explicit selection must change the key";
  (* the sessions' resolved-ranks convention: a top-form request whose
     selection resolved to ranks keys identically to the explicit form *)
  check Alcotest.string "resolved ranks == explicit select"
    (Api.canonical_key ~scope:Api.Context d)
    (Api.canonical_key ~scope:Api.Context
       { (decode_exn {|{"dataset":"product-reviews","q":"gps","top":2}|}) with
         Api.select = Some [ 1; 3 ];
       })

let test_decode_errors () =
  let bad body =
    match Json.of_string body with
    | Error _ -> ()
    | Ok j -> (
      match Api.decode_compare j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" body)
  in
  bad {|{"q":"gps"}|};
  bad {|{"dataset":"product-reviews"}|};
  bad {|{"dataset":"product-reviews","q":"gps","algorithm":"quantum"}|};
  bad {|{"dataset":"product-reviews","q":"gps","select":"1"}|};
  bad {|{"dataset":"product-reviews","q":"gps","domains":0}|}

(* ---- Server.handle (no sockets) --------------------------------------------- *)

let server =
  lazy (Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:4 ())

let handle ?meth ?body target =
  Server.handle (Lazy.force server) (request ?meth ?body target)

let compare_body =
  {|{"dataset":"product-reviews","q":"gps","top":3,"size_bound":6}|}

let member_exn name body =
  match Json.of_string body with
  | Ok j -> (
    match Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "no field %S in %s" name body)
  | Error e -> Alcotest.failf "bad response JSON %s: %s" body e

let test_handle_basic () =
  let resp = handle "/health" in
  check Alcotest.int "health status" 200 resp.Http.status;
  check Alcotest.string "health body" {|{"status":"ok"}|} resp.Http.resp_body;
  let resp = handle "/datasets" in
  check Alcotest.int "datasets status" 200 resp.Http.status;
  (match member_exn "datasets" resp.Http.resp_body with
  | Json.List [ ds ] ->
    check json "dataset name" (Json.String "product-reviews")
      (Option.value ~default:Json.Null (Json.member "name" ds))
  | _ -> Alcotest.fail "expected one dataset");
  let resp = handle ~meth:"POST" ~body:"{}" "/health" in
  check Alcotest.int "405 on wrong verb" 405 resp.Http.status;
  check Alcotest.(option string) "Allow header" (Some "GET")
    (List.assoc_opt "Allow" resp.Http.resp_headers);
  let resp = handle "/no/such/route" in
  check Alcotest.int "404" 404 resp.Http.status

let test_handle_search () =
  let resp = handle "/search?dataset=product-reviews&q=gps&limit=3" in
  check Alcotest.int "search status" 200 resp.Http.status;
  (match member_exn "count" resp.Http.resp_body with
  | Json.Int n when n > 0 && n <= 3 -> ()
  | v -> Alcotest.failf "bad count %s" (Json.to_string v));
  check Alcotest.int "missing q" 400 (handle "/search?dataset=product-reviews").Http.status;
  check Alcotest.int "unknown dataset" 404
    (handle "/search?dataset=nope&q=gps").Http.status

let test_handle_compare_errors () =
  check Alcotest.int "bad JSON" 400
    (handle ~meth:"POST" ~body:"{oops" "/compare").Http.status;
  check Alcotest.int "unknown dataset" 404
    (handle ~meth:"POST"
       ~body:{|{"dataset":"nope","q":"gps"}|} "/compare")
      .Http.status;
  check Alcotest.int "no results" 404
    (handle ~meth:"POST"
       ~body:{|{"dataset":"product-reviews","q":"zzzqqqxxx"}|} "/compare")
      .Http.status;
  check Alcotest.int "bound too small" 422
    (handle ~meth:"POST"
       ~body:{|{"dataset":"product-reviews","q":"gps","size_bound":0}|}
       "/compare")
      .Http.status;
  check Alcotest.int "exhaustive rejected" 422
    (handle ~meth:"POST"
       ~body:{|{"dataset":"product-reviews","q":"gps","algorithm":"exhaustive"}|}
       "/compare")
      .Http.status;
  check Alcotest.int "rank out of range" 422
    (handle ~meth:"POST"
       ~body:{|{"dataset":"product-reviews","q":"gps","select":[1,999]}|}
       "/compare")
      .Http.status

let test_handle_compare_cache () =
  let miss = handle ~meth:"POST" ~body:compare_body "/compare" in
  check Alcotest.int "compare ok" 200 miss.Http.status;
  check Alcotest.(option string) "first is a miss" (Some "miss")
    (List.assoc_opt "X-Cache" miss.Http.resp_headers);
  let hit = handle ~meth:"POST" ~body:compare_body "/compare" in
  check Alcotest.(option string) "second is a hit" (Some "hit")
    (List.assoc_opt "X-Cache" hit.Http.resp_headers);
  check Alcotest.string "byte-identical body" miss.Http.resp_body
    hit.Http.resp_body;
  (* a differently-spelled but equivalent request also hits *)
  let equiv =
    {|{"dataset":"product-reviews","q":"GPS","top":3,"size_bound":6,"measure":"raw"}|}
  in
  let hit2 = handle ~meth:"POST" ~body:equiv "/compare" in
  check Alcotest.(option string) "normalized request hits" (Some "hit")
    (List.assoc_opt "X-Cache" hit2.Http.resp_headers);
  check Alcotest.string "same body" miss.Http.resp_body hit2.Http.resp_body;
  match member_exn "dod" miss.Http.resp_body with
  | Json.Int dod when dod >= 0 -> ()
  | v -> Alcotest.failf "bad dod %s" (Json.to_string v)

let test_handle_sessions () =
  check Alcotest.int "duplicate select ranks rejected" 422
    (handle ~meth:"POST"
       ~body:{|{"dataset":"product-reviews","q":"gps","select":[1,2,1]}|}
       "/session")
      .Http.status;
  let created =
    handle ~meth:"POST" ~body:compare_body "/session"
  in
  check Alcotest.int "created" 201 created.Http.status;
  let id =
    match member_exn "id" created.Http.resp_body with
    | Json.String id -> id
    | _ -> Alcotest.fail "no session id"
  in
  let got = handle ("/session/" ^ id) in
  check Alcotest.int "get" 200 got.Http.status;
  (match member_exn "table" got.Http.resp_body with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "session table missing");
  let added =
    handle ~meth:"POST" ~body:{|{"rank":4}|} ("/session/" ^ id ^ "/add")
  in
  check Alcotest.int "add" 200 added.Http.status;
  check json "ranks after add"
    (Json.List [ Json.Int 1; Json.Int 2; Json.Int 3; Json.Int 4 ])
    (member_exn "ranks" added.Http.resp_body);
  check Alcotest.int "double add rejected" 422
    (handle ~meth:"POST" ~body:{|{"rank":4}|} ("/session/" ^ id ^ "/add"))
      .Http.status;
  let removed =
    handle ~meth:"POST" ~body:{|{"rank":2}|} ("/session/" ^ id ^ "/remove")
  in
  check Alcotest.int "remove" 200 removed.Http.status;
  check json "ranks after remove"
    (Json.List [ Json.Int 1; Json.Int 3; Json.Int 4 ])
    (member_exn "ranks" removed.Http.resp_body);
  let resized =
    handle ~meth:"POST" ~body:{|{"size_bound":9}|} ("/session/" ^ id ^ "/size")
  in
  check Alcotest.int "resize" 200 resized.Http.status;
  check json "new bound" (Json.Int 9) (member_exn "size_bound" resized.Http.resp_body);
  check Alcotest.int "bad resize" 422
    (handle ~meth:"POST" ~body:{|{"size_bound":0}|}
       ("/session/" ^ id ^ "/size"))
      .Http.status;
  check Alcotest.int "delete" 200
    (handle ~meth:"DELETE" ("/session/" ^ id)).Http.status;
  check Alcotest.int "gone" 404 (handle ("/session/" ^ id)).Http.status;
  check Alcotest.int "unknown session" 404
    (handle ~meth:"POST" ~body:{|{"rank":1}|} "/session/sX/add").Http.status

let test_handle_metrics () =
  let resp = handle "/metrics" in
  check Alcotest.int "metrics status" 200 resp.Http.status;
  (match member_exn "requests_total" resp.Http.resp_body with
  | Json.Int n when n > 0 -> ()
  | v -> Alcotest.failf "requests_total not positive: %s" (Json.to_string v));
  match Json.member "hits" (member_exn "cache" resp.Http.resp_body) with
  | Some (Json.Int hits) when hits > 0 -> ()
  | _ -> Alcotest.fail "cache hits should be positive after the cache test"

(* ---- End-to-end over sockets ------------------------------------------------ *)

let test_e2e_concurrent () =
  let t = Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:8 () in
  let running = Server.start ~threads:8 ~port:0 t in
  let port = Server.port running in
  Fun.protect
    ~finally:(fun () -> Server.stop running)
    (fun () ->
      let status, _, body = Http.request ~host:"127.0.0.1" ~port "/health" in
      check Alcotest.int "health over socket" 200 status;
      check Alcotest.string "health body" {|{"status":"ok"}|} body;
      (* cold request, then 8 concurrent clients on the same comparison *)
      let cold_start = Unix.gettimeofday () in
      let _, cold_headers, cold_body =
        Http.request ~host:"127.0.0.1" ~port ~body:compare_body "/compare"
      in
      let cold_elapsed = Unix.gettimeofday () -. cold_start in
      check Alcotest.(option string) "cold is a miss" (Some "miss")
        (List.assoc_opt "x-cache" cold_headers);
      let results = Array.make 8 (0, [], "") in
      let clients =
        List.init 8 (fun i ->
            Thread.create
              (fun i ->
                results.(i) <-
                  Http.request ~host:"127.0.0.1" ~port ~body:compare_body
                    "/compare")
              i)
      in
      List.iter Thread.join clients;
      Array.iteri
        (fun i (status, headers, body) ->
          check Alcotest.int (Printf.sprintf "client %d status" i) 200 status;
          check Alcotest.string
            (Printf.sprintf "client %d byte-identical" i)
            cold_body body;
          check Alcotest.(option string)
            (Printf.sprintf "client %d cache hit" i)
            (Some "hit")
            (List.assoc_opt "x-cache" headers))
        results;
      (* warm repeat is served from the cache measurably faster *)
      let warm_start = Unix.gettimeofday () in
      let _, _, warm_body =
        Http.request ~host:"127.0.0.1" ~port ~body:compare_body "/compare"
      in
      let warm_elapsed = Unix.gettimeofday () -. warm_start in
      check Alcotest.string "warm byte-identical" cold_body warm_body;
      if warm_elapsed >= cold_elapsed then
        Alcotest.failf "cache hit not faster: cold %.6fs warm %.6fs"
          cold_elapsed warm_elapsed;
      (* keep-alive: several requests on one connection *)
      Http.with_connection ~host:"127.0.0.1" ~port (fun call ->
          let status, _, _ = call "/health" in
          check Alcotest.int "keep-alive 1" 200 status;
          let status, _, _ = call ~body:compare_body "/compare" in
          check Alcotest.int "keep-alive 2" 200 status;
          let status, _, _ = call "/metrics" in
          check Alcotest.int "keep-alive 3" 200 status);
      (* metrics reflect the traffic *)
      let _, _, metrics = Http.request ~host:"127.0.0.1" ~port "/metrics" in
      (match member_exn "requests_total" metrics with
      | Json.Int n when n >= 13 -> ()
      | v -> Alcotest.failf "requests_total too small: %s" (Json.to_string v));
      match Json.member "hits" (member_exn "cache" metrics) with
      | Some (Json.Int hits) when hits >= 9 -> ()
      | v ->
        Alcotest.failf "expected >= 9 cache hits, got %s"
          (match v with Some v -> Json.to_string v | None -> "nothing"))

(* Regression: a worker parked in a keep-alive read must not stall stop.
   Hold open a connection that already served one request (its worker is
   blocked reading the next request line) plus one that never sent a byte,
   then require stop to join every thread promptly. *)
let test_stop_with_idle_connections () =
  let t = Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:4 () in
  let running = Server.start ~threads:2 ~port:0 t in
  let port = Server.port running in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let connect () =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect sock addr;
    sock
  in
  let keep_alive = connect () in
  let oc = Unix.out_channel_of_descr keep_alive in
  let ic = Unix.in_channel_of_descr keep_alive in
  Http.send_request oc ~host:"127.0.0.1" "/health";
  let status, _, _ = Http.read_response ic in
  check Alcotest.int "request served before idling" 200 status;
  let silent = connect () in
  let stopped = ref false in
  let stopper =
    Thread.create
      (fun () ->
        Server.stop running;
        stopped := true)
      ()
  in
  (* Bounded wait: if stop hangs on the idle connections, fail instead of
     wedging the whole suite. *)
  let deadline = Unix.gettimeofday () +. 5. in
  while (not !stopped) && Unix.gettimeofday () < deadline do
    Thread.delay 0.05
  done;
  if not !stopped then Alcotest.fail "stop did not return with idle clients";
  Thread.join stopper;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ keep_alive; silent ]

(* ---- Request limits: 431 on oversized headers, 413 on oversized body ---- *)

let with_limits_server f =
  let t = Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:4 () in
  let running = Server.start ~threads:2 ~port:0 t in
  Fun.protect
    ~finally:(fun () -> Server.stop running)
    (fun () -> f (Server.port running))

let with_raw_socket port f =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock addr;
      f sock (Unix.in_channel_of_descr sock) (Unix.out_channel_of_descr sock))

let test_header_limits () =
  with_limits_server (fun port ->
      (* 64 headers pass; the 65th is refused *)
      with_raw_socket port (fun _ ic oc ->
          Out_channel.output_string oc "GET /health HTTP/1.1\r\n";
          for i = 1 to Http.max_headers do
            Out_channel.output_string oc (Printf.sprintf "X-H%d: v\r\n" i)
          done;
          Out_channel.output_string oc "\r\n";
          Out_channel.flush oc;
          let status, _, _ = Http.read_response ic in
          check Alcotest.int "max_headers exactly is fine" 200 status);
      with_raw_socket port (fun _ ic oc ->
          Out_channel.output_string oc "GET /health HTTP/1.1\r\n";
          for i = 1 to Http.max_headers + 1 do
            Out_channel.output_string oc (Printf.sprintf "X-H%d: v\r\n" i)
          done;
          Out_channel.output_string oc "\r\n";
          Out_channel.flush oc;
          let status, _, body = Http.read_response ic in
          check Alcotest.int "too many headers" 431 status;
          check Alcotest.bool "names the limit" true
            (Xsact_util.Textutil.contains_substring body "64"));
      (* one header line past the byte bound *)
      with_raw_socket port (fun _ ic oc ->
          Out_channel.output_string oc "GET /health HTTP/1.1\r\n";
          Out_channel.output_string oc
            ("X-Big: " ^ String.make Http.max_header_line_bytes 'a' ^ "\r\n\r\n");
          Out_channel.flush oc;
          let status, _, _ = Http.read_response ic in
          check Alcotest.int "oversized header line" 431 status);
      (* server still healthy afterwards *)
      let status, _, _ = Http.request ~host:"127.0.0.1" ~port "/health" in
      check Alcotest.int "still serving" 200 status)

(* Regression: a client streaming 10 MiB of header must be refused after
   ~8 KiB, with the response arriving long before the stream completes —
   the server never buffers the flood. *)
let test_header_stream_10mib () =
  with_limits_server (fun port ->
      with_raw_socket port (fun sock ic oc ->
          Out_channel.output_string oc "GET /health HTTP/1.1\r\nX-Flood: ";
          Out_channel.flush oc;
          let chunk = String.make 65536 'z' in
          let total = 10 * 1024 * 1024 in
          let sent = ref 0 in
          let refused_early = ref false in
          (try
             while !sent < total && not !refused_early do
               (* stop flooding the moment the server has answered *)
               let readable, _, _ = Unix.select [ sock ] [] [] 0. in
               if readable <> [] then refused_early := true
               else begin
                 Out_channel.output_string oc chunk;
                 Out_channel.flush oc;
                 sent := !sent + String.length chunk
               end
             done
           with Sys_error _ | Unix.Unix_error _ ->
             (* server already closed on us: also an early refusal *)
             refused_early := true);
          check Alcotest.bool
            (Printf.sprintf "refused before 10 MiB (sent %d)" !sent)
            true
            (!refused_early && !sent < total);
          let status, _, _ = Http.read_response ic in
          check Alcotest.int "431 on header flood" 431 status))

let test_body_limits () =
  with_limits_server (fun port ->
      (* exactly max_body_bytes is read and dispatched (bad JSON, not 413) *)
      with_raw_socket port (fun _ ic oc ->
          Out_channel.output_string oc
            (Printf.sprintf
               "POST /compare HTTP/1.1\r\nContent-Length: %d\r\n\r\n"
               Http.max_body_bytes);
          Out_channel.output_string oc (String.make Http.max_body_bytes 'x');
          Out_channel.flush oc;
          let status, _, _ = Http.read_response ic in
          check Alcotest.int "boundary body accepted" 400 status);
      (* one byte past: refused up front, before any body is sent *)
      with_raw_socket port (fun _ ic oc ->
          Out_channel.output_string oc
            (Printf.sprintf
               "POST /compare HTTP/1.1\r\nContent-Length: %d\r\n\r\n"
               (Http.max_body_bytes + 1));
          Out_channel.flush oc;
          let status, headers, body = Http.read_response ic in
          check Alcotest.int "oversized body" 413 status;
          check Alcotest.(option string) "closes the connection"
            (Some "close")
            (List.assoc_opt "connection" headers);
          check Alcotest.bool "names the limit" true
            (Xsact_util.Textutil.contains_substring body
               (string_of_int Http.max_body_bytes))))

let () =
  Alcotest.run "xsact_serve"
    [
      ( "http",
        [
          Alcotest.test_case "request line" `Quick test_request_line;
          Alcotest.test_case "header line" `Quick test_header_line;
          Alcotest.test_case "target splitting" `Quick test_split_target;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
        ] );
      ( "router",
        [
          Alcotest.test_case "patterns" `Quick test_router_params;
          Alcotest.test_case "dispatch" `Quick test_router_dispatch;
        ] );
      ("lru", [ Alcotest.test_case "eviction order" `Quick test_lru_eviction ]);
      ( "api",
        [
          Alcotest.test_case "cache-key normalization" `Quick
            test_canonical_key_normalization;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
        ] );
      ( "handle",
        [
          Alcotest.test_case "basic routes" `Quick test_handle_basic;
          Alcotest.test_case "search" `Quick test_handle_search;
          Alcotest.test_case "compare errors" `Quick test_handle_compare_errors;
          Alcotest.test_case "compare cache" `Quick test_handle_compare_cache;
          Alcotest.test_case "sessions" `Quick test_handle_sessions;
          Alcotest.test_case "metrics" `Quick test_handle_metrics;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "concurrent clients" `Quick test_e2e_concurrent;
          Alcotest.test_case "stop with idle connections" `Quick
            test_stop_with_idle_connections;
        ] );
      ( "limits",
        [
          Alcotest.test_case "header count and line bounds" `Quick
            test_header_limits;
          Alcotest.test_case "10 MiB header stream" `Quick
            test_header_stream_10mib;
          Alcotest.test_case "body size boundary" `Quick test_body_limits;
        ] );
    ]
