(* Overload and failure-path tests: deadline/cancellation tokens, the
   failpoint harness, pool cancellation, deadline determinism of the
   anytime algorithms, session TTL/LRU hygiene, and end-to-end daemon
   survival under slow computations, shed bursts and mid-response
   disconnects. *)

module Deadline = Xsact_util.Deadline
module Failpoint = Xsact_util.Failpoint
module Domain_pool = Xsact_util.Domain_pool
module Http = Xsact_server.Http
module Json = Xsact_server.Json
module Server = Xsact_server.Server
module Session_store = Xsact_server.Session_store

let check = Alcotest.check

let request ?(meth = "GET") ?(headers = []) ?(body = "") target =
  let path, query = Http.split_target target in
  { Http.meth; target; path; query; headers; body }

let member_exn name body =
  match Json.of_string body with
  | Ok j -> (
    match Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "no field %S in %s" name body)
  | Error e -> Alcotest.failf "bad response JSON %s: %s" body e

let event_count metrics_body name =
  match Json.member name (member_exn "events" metrics_body) with
  | Some (Json.Int n) -> n
  | _ -> 0

(* ---- Deadline tokens ------------------------------------------------------- *)

let test_deadline_basics () =
  let t = Deadline.create () in
  check Alcotest.bool "no budget, not over" false (Deadline.over (Some t));
  check Alcotest.bool "none never over" false (Deadline.over None);
  Deadline.cancel t;
  check Alcotest.bool "cancel trips" true (Deadline.over (Some t));
  check Alcotest.bool "cancelled" true (Deadline.cancelled t);
  check (Alcotest.float 0.) "no remaining once cancelled" 0.
    (Deadline.remaining_s t);
  let zero = Deadline.of_ms 0. in
  check Alcotest.bool "zero budget expires immediately" true
    (Deadline.expired zero);
  let generous = Deadline.of_ms 3_600_000. in
  check Alcotest.bool "generous budget not over" false
    (Deadline.over (Some generous));
  check Alcotest.bool "remaining positive" true
    (Deadline.remaining_s generous > 0.);
  (match Deadline.check (Some zero) with
  | () -> Alcotest.fail "check on a tripped token must raise"
  | exception Deadline.Expired -> ());
  Deadline.check None;
  Deadline.check (Some generous);
  match Deadline.create ~budget_s:(-1.) () with
  | _ -> Alcotest.fail "negative budget accepted"
  | exception Invalid_argument _ -> ()

(* ---- Failpoints ------------------------------------------------------------ *)

let test_failpoint_actions () =
  Failpoint.reset ();
  (* disarmed: a hit is a no-op *)
  Failpoint.hit "nowhere";
  Failpoint.enable "t.fail" Failpoint.Fail;
  (match Failpoint.hit "t.fail" with
  | () -> Alcotest.fail "armed Fail point did not raise"
  | exception Failpoint.Injected "t.fail" -> ()
  | exception Failpoint.Injected other ->
    Alcotest.failf "wrong point name %s" other);
  Failpoint.hit "t.other" (* other points unaffected *);
  Failpoint.enable "t.twice" (Failpoint.Fail_n 2);
  let raises () =
    match Failpoint.hit "t.twice" with
    | () -> false
    | exception Failpoint.Injected _ -> true
  in
  let r1 = raises () in
  let r2 = raises () in
  let r3 = raises () in
  let r4 = raises () in
  check Alcotest.(list bool) "fail:2 fails twice then passes"
    [ true; true; false; false ]
    [ r1; r2; r3; r4 ];
  check Alcotest.int "hits counted" 4 (Failpoint.hits "t.twice");
  Failpoint.enable "t.sleep" (Failpoint.Sleep 0.05);
  let t0 = Unix.gettimeofday () in
  Failpoint.hit "t.sleep";
  if Unix.gettimeofday () -. t0 < 0.04 then
    Alcotest.fail "Sleep point did not delay";
  Failpoint.disable "t.fail";
  Failpoint.hit "t.fail";
  Failpoint.reset ();
  Failpoint.hit "t.twice";
  check Alcotest.int "reset zeroes counts" 0 (Failpoint.hits "t.twice")

let test_failpoint_configure () =
  Failpoint.reset ();
  (match Failpoint.configure "a.b=fail:1,c.d=sleep:0.001;e.f=fail" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid spec rejected: %s" e);
  (match Failpoint.hit "a.b" with
  | () -> Alcotest.fail "configured point not armed"
  | exception Failpoint.Injected _ -> ());
  Failpoint.hit "a.b" (* fail:1 passes afterwards *);
  Failpoint.hit "c.d";
  let bad spec =
    match Failpoint.configure spec with
    | Ok () -> Alcotest.failf "accepted malformed spec %S" spec
    | Error _ -> ()
  in
  bad "nonsense";
  bad "p=explode";
  bad "p=sleep:fast";
  bad "p=fail:-3";
  bad "=fail";
  Failpoint.reset ()

(* ---- Domain pool cancellation ---------------------------------------------- *)

let test_pool_cancellation () =
  let pool = Domain_pool.get ~domains:2 in
  let tripped =
    [ Deadline.of_ms 0.;
      (let d = Deadline.create () in Deadline.cancel d; d) ]
  in
  List.iter
    (fun d ->
      match
        Domain_pool.parallel_for ~deadline:d pool ~n:64 ~chunk:(fun _ _ -> ())
      with
      | () -> Alcotest.fail "tripped deadline must raise Expired"
      | exception Deadline.Expired -> ())
    tripped;
  (* the pool survives cancellation: a normal job still runs every chunk *)
  let seen = Array.make 100 false in
  Domain_pool.parallel_for pool ~n:100 ~chunk:(fun lo hi ->
      for i = lo to hi - 1 do
        seen.(i) <- true
      done);
  check Alcotest.bool "pool reusable after cancellation" true
    (Array.for_all Fun.id seen);
  (* a failing submission (pool.submit failpoint) leaves it reusable too *)
  Failpoint.reset ();
  Failpoint.enable "pool.submit" Failpoint.Fail;
  (match
     Domain_pool.parallel_for pool ~n:64 ~chunk:(fun _ _ -> ())
   with
  | () -> Alcotest.fail "armed pool.submit did not raise"
  | exception Failpoint.Injected _ -> ());
  Failpoint.reset ();
  Array.fill seen 0 100 false;
  Domain_pool.parallel_for pool ~n:100 ~chunk:(fun lo hi ->
      for i = lo to hi - 1 do
        seen.(i) <- true
      done);
  check Alcotest.bool "pool reusable after injected submit failure" true
    (Array.for_all Fun.id seen)

(* ---- Deadline determinism of the algorithms --------------------------------- *)

let profiles_under_test =
  lazy
    (Xsact_workload.Workload.synthetic_profiles ~seed:11 ~results:4
       ~entities:2 ~types_per_entity:4 ~values_per_type:3 ~max_count:5)

let test_generous_deadline_bit_identical () =
  let profiles = Lazy.force profiles_under_test in
  List.iter
    (fun domains ->
      let c = Dod.make_context ~domains profiles in
      List.iter
        (fun alg ->
          let base = Algorithm.generate ~domains alg c ~limit:6 in
          let generous = Deadline.of_ms 3_600_000. in
          let dfss, outcome =
            Algorithm.generate_within ~domains ~deadline:generous alg c
              ~limit:6
          in
          let name d =
            Printf.sprintf "%s (domains=%d)" (Algorithm.to_string alg) d
          in
          check Alcotest.bool (name domains ^ " complete") true
            (outcome = `Complete);
          check Alcotest.bool (name domains ^ " bit-identical") true
            (dfss = base))
        Algorithm.practical)
    [ 1; 2 ]

let test_tripped_deadline_still_valid () =
  let profiles = Lazy.force profiles_under_test in
  let c = Dod.make_context ~domains:1 profiles in
  List.iter
    (fun alg ->
      let d = Deadline.of_ms 0. in
      let dfss, _ = Algorithm.generate_within ~deadline:d alg c ~limit:6 in
      check Alcotest.bool
        (Algorithm.to_string alg ^ " valid under tripped deadline")
        true
        (Array.for_all (fun dfs -> Dfs.is_valid ~limit:6 dfs) dfss))
    Algorithm.practical

let test_pipeline_deadline_paths () =
  let profiles = Lazy.force profiles_under_test in
  (* no deadline vs generous deadline: byte-identical JSON bodies, modulo
     the wall-clock elapsed_s field *)
  let body c =
    Json.to_string
      (Xsact_server.Api.json_of_comparison { c with Pipeline.elapsed_s = 0. })
  in
  let run ?deadline () =
    match
      Pipeline.compare_profiles ?deadline ~keywords:"synthetic" ~size_bound:6
        profiles
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "compare failed: %s" (Error.to_string e)
  in
  let base = run () in
  let timed = run ~deadline:(Deadline.of_ms 3_600_000.) () in
  check Alcotest.bool "not degraded" false timed.Pipeline.degraded;
  check Alcotest.string "byte-identical body" (body base) (body timed);
  (* a pre-tripped deadline is a typed timeout, not a crash *)
  (match
     Pipeline.compare_profiles ~deadline:(Deadline.of_ms 0.)
       ~keywords:"synthetic" ~size_bound:6 profiles
   with
  | Error Error.Timeout -> ()
  | Ok _ -> Alcotest.fail "expected Timeout for a zero deadline"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e));
  (* a deadline tripping mid-generation degrades but still answers: the
     compare.round failpoint stalls the first round past the budget *)
  Failpoint.reset ();
  Failpoint.enable "compare.round" (Failpoint.Sleep 0.5);
  Fun.protect ~finally:Failpoint.reset (fun () ->
      let degraded = run ~deadline:(Deadline.of_ms 200.) () in
      check Alcotest.bool "degraded flagged" true degraded.Pipeline.degraded;
      check Alcotest.bool "degraded DFSs valid" true
        (Array.for_all
           (fun dfs -> Dfs.is_valid ~limit:6 dfs)
           degraded.Pipeline.dfss);
      check Alcotest.bool "degraded in body" true
        (member_exn "degraded" (body degraded) = Json.Bool true))

(* ---- Session store hygiene -------------------------------------------------- *)

let test_session_ttl () =
  let now = ref 0. in
  let store = Session_store.create ~ttl_s:10. ~now:(fun () -> !now) () in
  let id = Session_store.add store "payload" in
  now := 8.;
  check Alcotest.(option string) "alive within ttl" (Some "payload")
    (Session_store.find store id);
  (* the find refreshed the idle clock: 8 + 9 = 17 is still alive *)
  now := 17.;
  check Alcotest.(option string) "find refreshes ttl" (Some "payload")
    (Session_store.find store id);
  now := 28.;
  check Alcotest.(option string) "expired after idle > ttl" None
    (Session_store.find store id);
  check Alcotest.int "count sees it gone" 0 (Session_store.count store);
  check Alcotest.int "expiry counted" 1 (Session_store.expired_total store);
  check Alcotest.int "no lru evictions" 0 (Session_store.evicted_total store)

let test_session_capacity () =
  let now = ref 0. in
  let store = Session_store.create ~capacity:2 ~now:(fun () -> !now) () in
  let a = Session_store.add store "a" in
  now := 1.;
  let b = Session_store.add store "b" in
  now := 2.;
  ignore (Session_store.find store a) (* refresh a: b is now the LRU *);
  now := 3.;
  let c = Session_store.add store "c" in
  check Alcotest.(list string) "lru evicted" [ a; c ] (Session_store.ids store);
  check Alcotest.(option string) "victim gone" None
    (Session_store.find store b);
  check Alcotest.int "eviction counted" 1 (Session_store.evicted_total store);
  check Alcotest.int "capacity held" 2 (Session_store.count store)

(* Eviction order under mixed add/find/set traffic: both [find] and [set]
   count as touches, so the victim is always the session idle longest —
   not the one created earliest. *)
let test_session_recency () =
  let now = ref 0. in
  let evicted = ref [] in
  let on_event = function
    | Session_store.Evicted { id; _ } -> evicted := !evicted @ [ id ]
    | _ -> ()
  in
  let store =
    Session_store.create ~capacity:3 ~now:(fun () -> !now) ~on_event ()
  in
  let a = Session_store.add store "a" in
  now := 1.;
  let b = Session_store.add store "b" in
  now := 2.;
  let c = Session_store.add store "c" in
  now := 3.;
  ignore (Session_store.find store a);
  (* a refreshed by the read *)
  now := 4.;
  Session_store.set store c "c2" (* c refreshed by the write *);
  now := 5.;
  let d = Session_store.add store "d" in
  (* b — created second but idle longest — is the victim, not a *)
  check Alcotest.(list string) "find and set both refresh" [ b ] !evicted;
  check Alcotest.(option string) "victim gone" None
    (Session_store.find store b);
  check Alcotest.(option string) "read-refreshed survivor" (Some "a")
    (Session_store.find store a);
  (* that find just touched a at t=5; c (t=4) is now the LRU *)
  now := 6.;
  let _e = Session_store.add store "e" in
  check Alcotest.(list string) "second victim is c" [ b; c ] !evicted;
  check
    Alcotest.(list string)
    "survivors" (List.sort compare [ a; d; _e ])
    (Session_store.ids store);
  check Alcotest.int "evictions counted" 2 (Session_store.evicted_total store)

(* ---- Server: deadlines, degradation, 504s (no sockets) ----------------------- *)

let compare_body =
  {|{"dataset":"product-reviews","q":"gps","top":3,"size_bound":6}|}

let test_handle_deadline_degraded () =
  let t =
    Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:4
      ~deadline_ms:200 ()
  in
  let handle ?headers ?meth ?body target =
    Server.handle t (request ?headers ?meth ?body target)
  in
  Failpoint.reset ();
  Failpoint.enable "compare.round" (Failpoint.Sleep 0.5);
  Fun.protect ~finally:Failpoint.reset (fun () ->
      let resp = handle ~meth:"POST" ~body:compare_body "/compare" in
      check Alcotest.int "degraded compare is 200" 200 resp.Http.status;
      (match List.assoc_opt "X-Degraded" resp.Http.resp_headers with
      | Some reasons when String.length reasons > 0 -> ()
      | _ -> Alcotest.fail "missing X-Degraded header");
      check Alcotest.bool "body flags degraded" true
        (member_exn "degraded" resp.Http.resp_body = Json.Bool true);
      (* degraded bodies are never cached: the repeat is a miss again *)
      let again = handle ~meth:"POST" ~body:compare_body "/compare" in
      check Alcotest.(option string) "degraded not cached" (Some "miss")
        (List.assoc_opt "X-Cache" again.Http.resp_headers));
  (* failpoint gone: the same request completes, uncached then cached *)
  let clean = handle ~meth:"POST" ~body:compare_body "/compare" in
  check Alcotest.int "clean compare ok" 200 clean.Http.status;
  check Alcotest.(option string) "clean compare not degraded" None
    (List.assoc_opt "X-Degraded" clean.Http.resp_headers);
  let hit = handle ~meth:"POST" ~body:compare_body "/compare" in
  check Alcotest.(option string) "clean compare cached" (Some "hit")
    (List.assoc_opt "X-Cache" hit.Http.resp_headers);
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.bool "degraded responses counted" true
    (event_count metrics "responses_degraded" >= 2)

let test_handle_deadline_header () =
  (* the header override is clamped by max_deadline_ms: a huge client ask
     still times against the 100ms cap and degrades under the failpoint *)
  let t =
    Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:4
      ~max_deadline_ms:100 ()
  in
  let handle ?headers ?meth ?body target =
    Server.handle t (request ?headers ?meth ?body target)
  in
  Failpoint.reset ();
  Failpoint.enable "compare.round" (Failpoint.Sleep 0.4);
  Fun.protect ~finally:Failpoint.reset (fun () ->
      let resp =
        handle
          ~headers:[ ("x-deadline-ms", "3600000") ]
          ~meth:"POST" ~body:compare_body "/compare"
      in
      check Alcotest.int "still 200" 200 resp.Http.status;
      match List.assoc_opt "X-Degraded" resp.Http.resp_headers with
      | Some _ -> ()
      | None -> Alcotest.fail "header override escaped the server cap");
  (* a zero header budget cannot finish anything: typed 504 *)
  let resp =
    handle
      ~headers:[ ("x-deadline-ms", "0") ]
      ~meth:"POST"
      ~body:
        {|{"dataset":"product-reviews","q":"gps","top":3,"size_bound":7}|}
      "/compare"
  in
  check Alcotest.int "zero budget is 504" 504 resp.Http.status;
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.bool "timeout counted" true
    (event_count metrics "requests_timed_out" >= 1)

(* ---- End-to-end: disconnects, saturation bursts ------------------------------ *)

(* Stop with a bounded wait so a hang fails the test instead of wedging the
   suite. *)
let stop_bounded running =
  let stopped = ref false in
  let stopper =
    Thread.create
      (fun () ->
        Server.stop running;
        stopped := true)
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while (not !stopped) && Unix.gettimeofday () < deadline do
    Thread.delay 0.05
  done;
  if not !stopped then Alcotest.fail "stop did not return promptly";
  Thread.join stopper

let test_e2e_disconnect_mid_response () =
  let t = Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:4 () in
  let running = Server.start ~threads:2 ~port:0 t in
  let port = Server.port running in
  Fun.protect
    ~finally:(fun () ->
      Failpoint.reset ();
      stop_bounded running)
    (fun () ->
      Failpoint.reset ();
      Failpoint.enable "socket.write" (Failpoint.Fail_n 1);
      (* the injected write failure kills this connection mid-response —
         the client sees a dead socket, the daemon must shrug it off *)
      (match Http.request ~host:"127.0.0.1" ~port "/health" with
      | _ -> Alcotest.fail "first response should have been torn"
      | exception _ -> ());
      check Alcotest.bool "failpoint fired" true
        (Failpoint.hits "socket.write" >= 1);
      Failpoint.reset ();
      let status, _, body = Http.request ~host:"127.0.0.1" ~port "/health" in
      check Alcotest.int "daemon healthy after torn write" 200 status;
      check Alcotest.string "health body" {|{"status":"ok"}|} body)

let test_e2e_saturation_burst () =
  (* the acceptance drill: 2 workers, admission bound 4, 50ms deadlines,
     slow computations, 16 concurrent cold compares — every client gets a
     definitive answer, the daemon then serves normally and stops fast *)
  let t =
    Server.create ~datasets:[ "product-reviews" ] ~cache_capacity:32
      ~deadline_ms:50 ()
  in
  let running = Server.start ~threads:2 ~max_pending:4 ~port:0 t in
  let port = Server.port running in
  Fun.protect
    ~finally:(fun () ->
      Failpoint.reset ();
      stop_bounded running)
    (fun () ->
      Failpoint.reset ();
      Failpoint.enable "compare.round" (Failpoint.Sleep 0.2);
      let n = 16 in
      let results = Array.make n (0, [], "") in
      let clients =
        List.init n (fun i ->
            Thread.create
              (fun i ->
                let body =
                  Printf.sprintf
                    {|{"dataset":"product-reviews","q":"gps","top":3,"size_bound":%d}|}
                    (4 + i)
                in
                results.(i) <-
                  (try Http.request ~host:"127.0.0.1" ~port ~body "/compare"
                   with e ->
                     (-1, [], Printexc.to_string e)))
              i)
      in
      List.iter Thread.join clients;
      Array.iteri
        (fun i (status, headers, body) ->
          (match status with
          | 200 | 503 | 504 -> ()
          | s ->
            Alcotest.failf "client %d: non-definitive outcome %d (%s)" i s
              body);
          if status = 503 then
            check
              Alcotest.(option string)
              (Printf.sprintf "client %d shed with Retry-After" i)
              (Some "1")
              (List.assoc_opt "retry-after" headers);
          if status = 200 then
            match List.assoc_opt "x-degraded" headers with
            | Some _ -> ()
            | None ->
              Alcotest.failf
                "client %d: 200 without X-Degraded despite slow rounds" i)
        results;
      Failpoint.reset ();
      (* every client got an answer; overload events were recorded *)
      let _, _, metrics = Http.request ~host:"127.0.0.1" ~port "/metrics" in
      let shed = event_count metrics "requests_shed" in
      let timed_out = event_count metrics "requests_timed_out" in
      let degraded = event_count metrics "responses_degraded" in
      if shed + timed_out = 0 then
        Alcotest.failf "no overload events (shed=%d timed_out=%d)" shed
          timed_out;
      check Alcotest.bool "some responses degraded" true (degraded >= 1);
      (match member_exn "queue_pending" metrics with
      | Json.Int q when q >= 0 -> ()
      | v -> Alcotest.failf "bad queue_pending %s" (Json.to_string v));
      (* the daemon is not wedged: health and a fresh compare both work *)
      let status, _, _ = Http.request ~host:"127.0.0.1" ~port "/health" in
      check Alcotest.int "health after burst" 200 status;
      let status, _, _ =
        Http.request ~host:"127.0.0.1" ~port
          ~body:
            {|{"dataset":"product-reviews","q":"gps","top":3,"size_bound":23}|}
          "/compare"
      in
      check Alcotest.int "fresh compare after burst" 200 status)

let () =
  Alcotest.run "xsact_faults"
    [
      ("deadline", [ Alcotest.test_case "basics" `Quick test_deadline_basics ]);
      ( "failpoint",
        [
          Alcotest.test_case "actions" `Quick test_failpoint_actions;
          Alcotest.test_case "configure" `Quick test_failpoint_configure;
        ] );
      ( "pool",
        [ Alcotest.test_case "cancellation" `Quick test_pool_cancellation ] );
      ( "determinism",
        [
          Alcotest.test_case "generous deadline is bit-identical" `Quick
            test_generous_deadline_bit_identical;
          Alcotest.test_case "tripped deadline stays valid" `Quick
            test_tripped_deadline_still_valid;
          Alcotest.test_case "pipeline deadline paths" `Quick
            test_pipeline_deadline_paths;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "ttl expiry" `Quick test_session_ttl;
          Alcotest.test_case "lru capacity" `Quick test_session_capacity;
          Alcotest.test_case "lru recency under mixed traffic" `Quick
            test_session_recency;
        ] );
      ( "server",
        [
          Alcotest.test_case "deadline degrades, never cached" `Quick
            test_handle_deadline_degraded;
          Alcotest.test_case "header override and 504" `Quick
            test_handle_deadline_header;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "mid-response disconnect" `Quick
            test_e2e_disconnect_mid_response;
          Alcotest.test_case "saturation burst" `Quick
            test_e2e_saturation_burst;
        ] );
    ]
