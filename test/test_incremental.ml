(* The incremental comparison engine: Dod delta operations
   (add_result / remove_result / reparams), their threading through
   Session mutations, and the serve layer's warm-context machinery.

   The contract under test everywhere is *bit-identity*: a context
   maintained by deltas, and the DFSs regenerated from it, must equal a
   fresh batch rebuild — and a server running incremental must produce
   byte-identical response bodies to an ablation server running with
   full rebuilds (--no-incremental). *)

module Http = Xsact_server.Http
module Json = Xsact_server.Json
module Server = Xsact_server.Server

open Xsact_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let synthetic seed results =
  Xsact_workload.Workload.synthetic_profiles ~seed ~results ~entities:3
    ~types_per_entity:5 ~values_per_type:4 ~max_count:8

let ctx : Dod.context Alcotest.testable =
  Alcotest.testable
    (fun ppf _ -> Format.pp_print_string ppf "<context>")
    Dod.equal_context

let drop idx a =
  Array.of_list (List.filteri (fun i _ -> i <> idx) (Array.to_list a))

(* ---- Dod delta operations ---------------------------------------------- *)

let test_add_equals_fresh () =
  let profiles = synthetic 3 7 in
  let base = Array.sub profiles 0 6 in
  let c = Dod.make_context base in
  let c' = Dod.add_result c profiles.(6) in
  check ctx "add = fresh rebuild" (Dod.make_context profiles) c';
  check Alcotest.int "pair tables after add" (7 * 6 / 2)
    (Dod.num_pair_tables c');
  (* functional delta: the input context is untouched *)
  check ctx "input context intact" (Dod.make_context base) c;
  check Alcotest.int "input pair tables" (6 * 5 / 2) (Dod.num_pair_tables c)

let test_remove_equals_fresh () =
  let profiles = synthetic 5 6 in
  let c = Dod.make_context profiles in
  List.iter
    (fun idx ->
      check ctx
        (Printf.sprintf "remove %d = fresh rebuild" idx)
        (Dod.make_context (drop idx profiles))
        (Dod.remove_result c idx))
    [ 0; 3; 5 ];
  check ctx "input context intact" (Dod.make_context profiles) c

let test_add_remove_roundtrip () =
  let profiles = synthetic 17 5 in
  let extra = (synthetic 18 3).(2) in
  let c = Dod.make_context profiles in
  let roundtrip = Dod.remove_result (Dod.add_result c extra) 5 in
  check ctx "add then remove = original" c roundtrip

let test_parallel_delta_identical () =
  let profiles = synthetic 23 8 in
  let base = Array.sub profiles 0 7 in
  let seq = Dod.add_result ~domains:1 (Dod.make_context ~domains:1 base)
      profiles.(7) in
  let par = Dod.add_result ~domains:2 (Dod.make_context ~domains:2 base)
      profiles.(7) in
  check ctx "parallel add = sequential add" seq par;
  check ctx "parallel add = fresh" (Dod.make_context profiles) par

let test_reparams_equals_fresh () =
  let profiles = synthetic 9 5 in
  let c = Dod.make_context profiles in
  let params = { Dod.threshold_pct = 25.0; measure = Dod.Rate } in
  check ctx "params change = fresh"
    (Dod.make_context ~params profiles)
    (Dod.reparams ~params c);
  let weight _ = 3 in
  check ctx "weight change = fresh"
    (Dod.make_context ~weight profiles)
    (Dod.reparams ~weight c);
  check ctx "both = fresh"
    (Dod.make_context ~params ~weight profiles)
    (Dod.reparams ~params ~weight c);
  check ctx "input context intact" (Dod.make_context profiles) c

let test_delta_errors () =
  let profiles = synthetic 2 4 in
  let c = Dod.make_context profiles in
  Alcotest.check_raises "remove out of range"
    (Invalid_argument "Dod.remove_result: index out of range") (fun () ->
      ignore (Dod.remove_result c 4));
  Alcotest.check_raises "remove below two"
    (Invalid_argument "Dod.remove_result: need at least two results")
    (fun () ->
      ignore (Dod.remove_result (Dod.make_context (Array.sub profiles 0 2)) 0))

let test_deadline_mid_delta () =
  let profiles = synthetic 7 6 in
  let base = Array.sub profiles 0 5 in
  let c = Dod.make_context ~domains:1 base in
  Alcotest.check_raises "expired add raises" Deadline.Expired (fun () ->
      ignore
        (Dod.add_result ~domains:1 ~deadline:(Deadline.of_ms 0.) c
           profiles.(5)));
  Alcotest.check_raises "expired reparams raises" Deadline.Expired (fun () ->
      ignore
        (Dod.reparams ~domains:1 ~deadline:(Deadline.of_ms 0.)
           ~params:{ Dod.threshold_pct = 50.0; measure = Dod.Raw }
           c));
  (* the failed deltas left the input context fully intact *)
  check ctx "context intact after expiry" (Dod.make_context base) c

let test_remove_last_shares_tails () =
  let profiles = synthetic 21 8 in
  let c = Dod.make_context profiles in
  let last = 7 in
  let c' = Dod.remove_result c last in
  check ctx "remove last = fresh"
    (Dod.make_context (Array.sub profiles 0 last))
    c';
  (* the removed newest result's links sit at the chain heads (the
     descending-partner invariant), so dropping them is pure offset
     arithmetic on the shared buffers: the delta allocates ZERO fresh
     link-storage words — every surviving link is the input's own *)
  check Alcotest.int "remove-last allocates no link storage" 0
    (Dod.fresh_link_words ~parent:c c');
  (* guard against a degenerate corpus where nothing linked the removed
     result (the zero above would then be vacuous) *)
  let dropped = ref 0 in
  for i = 0 to last - 1 do
    for gi = 0 to Result_profile.num_types profiles.(i) - 1 do
      match Dod.links c ~i ~gi with
      | hd :: _ when hd.Dod.other = last -> incr dropped
      | _ -> ()
    done
  done;
  if !dropped = 0 then Alcotest.fail "degenerate: no list linked the removed result"

let test_remove_general_shares_suffix () =
  let profiles = synthetic 22 8 in
  let index = 3 in
  let c = Dod.make_context profiles in
  let c' = Dod.remove_result c index in
  check ctx "general remove = fresh"
    (Dod.make_context (drop index profiles))
    c';
  (* links below the removed index sit in each chain's tail (descending
     partners) and need no reindexing: the delta's fresh allocation is
     exactly the rewritten prefixes — 2 packed words per link above the
     removed index — and every tail word is shared physically *)
  let expected_fresh = ref 0 in
  let total_words = ref 0 in
  for i = 0 to Array.length profiles - 1 do
    if i <> index then
      for gi = 0 to Result_profile.num_types profiles.(i) - 1 do
        List.iter
          (fun (l : Dod.link) ->
            if l.Dod.other <> index then total_words := !total_words + 2;
            if l.Dod.other > index then expected_fresh := !expected_fresh + 2)
          (Dod.links c ~i ~gi)
      done
  done;
  check Alcotest.int "fresh words = rewritten prefixes only" !expected_fresh
    (Dod.fresh_link_words ~parent:c c');
  if !expected_fresh >= !total_words then
    Alcotest.fail "degenerate: no list had a shareable suffix"

(* ---- Dod.apply: coalesced op batches ------------------------------------ *)

let test_apply_batch_equals_fresh () =
  let profiles = synthetic 31 8 in
  let base = Array.sub profiles 0 5 in
  let c = Dod.make_context base in
  (* two adds, one remove of an original, an interleaved params change
     that loses to the final one: bit-identical to the fresh build over
     the final arrangement under the final params *)
  let p1 = { Dod.threshold_pct = 50.0; measure = Dod.Raw } in
  let p2 = { Dod.threshold_pct = 25.0; measure = Dod.Rate } in
  let ops =
    [
      Dod.Reparams { params = Some p1; weight = None };
      Dod.Add profiles.(5);
      Dod.Remove 1;
      Dod.Add profiles.(6);
      Dod.Reparams { params = Some p2; weight = None };
    ]
  in
  let final =
    Array.of_list
      (List.filteri (fun i _ -> i <> 1)
         (Array.to_list (Array.sub profiles 0 6))
      @ [ profiles.(6) ])
  in
  check ctx "batch = fresh over final arrangement"
    (Dod.make_context ~params:p2 final)
    (Dod.apply c ops);
  check ctx "input context intact" (Dod.make_context base) c;
  (* fold equivalence: the batch equals applying the ops one at a time *)
  let folded =
    List.fold_left (fun c op -> Dod.apply c [ op ]) c ops
  in
  check ctx "batch = sequential fold" folded (Dod.apply c ops)

let test_apply_cancelling_pairs () =
  let profiles = synthetic 33 6 in
  let base = Array.sub profiles 0 4 in
  let c = Dod.make_context base in
  (* an add immediately re-removed never costs a pair computation; the
     batch lands back on the original bytes *)
  let cancelling = [ Dod.Add profiles.(4); Dod.Remove 4 ] in
  check ctx "cancelling pair = original" (Dod.make_context base)
    (Dod.apply c cancelling);
  (* same with a second op riding along *)
  let ops = [ Dod.Add profiles.(4); Dod.Remove 4; Dod.Add profiles.(5) ] in
  check ctx "cancelling pair + survivor = fresh"
    (Dod.make_context (Array.append base [| profiles.(5) |]))
    (Dod.apply c ops);
  (* the empty batch is the context itself, physically *)
  if not (Dod.apply c [] == c) then Alcotest.fail "empty batch copied"

let test_apply_errors () =
  let profiles = synthetic 34 4 in
  let c = Dod.make_context profiles in
  Alcotest.check_raises "batch remove out of range"
    (Invalid_argument "Dod.apply: remove index out of range") (fun () ->
      ignore (Dod.apply c [ Dod.Add profiles.(0); Dod.Remove 9 ]));
  Alcotest.check_raises "batch remove below two"
    (Invalid_argument "Dod.apply: need at least two results") (fun () ->
      ignore (Dod.apply c [ Dod.Remove 0; Dod.Remove 0; Dod.Remove 0 ]));
  (* singleton batches route to the surgical ops and keep their errors *)
  Alcotest.check_raises "singleton remove keeps its message"
    (Invalid_argument "Dod.remove_result: index out of range") (fun () ->
      ignore (Dod.apply c [ Dod.Remove 9 ]));
  Alcotest.check_raises "expired batch raises" Deadline.Expired (fun () ->
      ignore
        (Dod.apply ~domains:1 ~deadline:(Deadline.of_ms 0.) c
           [ Dod.Add profiles.(0); Dod.Remove 0 ]));
  check ctx "context intact after failures" (Dod.make_context profiles) c

let test_approx_bytes_sane () =
  let small = Dod.make_context (synthetic 4 3) in
  let large = Dod.make_context (synthetic 4 12) in
  if Dod.approx_bytes small <= 0 then Alcotest.fail "non-positive footprint";
  if Dod.approx_bytes large <= Dod.approx_bytes small then
    Alcotest.fail "footprint does not grow with the result set"

(* Pin the accounting. The golden values are over a deterministic
   synthetic context; a change here means the accounting changed and
   --max-context-mb moved — review it, then update the value. The boxed
   baseline must keep reporting what the pre-flat representation
   actually cost (27584 on this corpus, the old representation's pinned
   golden), or the bytes-per-context comparison in BENCH_incremental
   and the CI memory smoke silently lose their meaning. *)
let test_approx_bytes_accounting () =
  if Sys.word_size = 64 then begin
    let c = Dod.make_context (synthetic 4 6) in
    check Alcotest.int "64-bit golden footprint (flat)" 21624
      (Dod.approx_bytes c);
    check Alcotest.int "64-bit golden footprint (boxed baseline)" 27584
      (Dod.approx_bytes_boxed c);
    (* delta maintenance must account like a fresh build: bit-identical
       contexts have identical footprints, whatever their physical
       segmentation *)
    let profiles = synthetic 4 7 in
    let grown = Dod.add_result c profiles.(6) in
    check Alcotest.int "delta footprint = fresh footprint"
      (Dod.approx_bytes (Dod.make_context profiles))
      (Dod.approx_bytes grown);
    let shrunk = Dod.remove_result (Dod.make_context profiles) 6 in
    check Alcotest.int "remove footprint = fresh footprint"
      (Dod.approx_bytes c) (Dod.approx_bytes shrunk)
  end

(* ---- Session threading -------------------------------------------------- *)

let session_of config profiles ~size_bound =
  match Session.create ~config ~size_bound profiles with
  | Ok s -> s
  | Error e -> Alcotest.fail (Error.to_string e)

let shrink s bound =
  match Session.set_size_bound s bound with
  | Ok s -> s
  | Error e -> Alcotest.fail (Error.to_string e)

let qs s = Array.map Dfs.to_q_array (Session.dfss s)

(* Regression: shrinking the bound warm-starts from the truncated DFS
   prefix and must be deterministic — two identical shrinks agree, every
   truncated DFS is valid at the new bound, and the result matches the
   non-incremental cold rebuild byte for byte. *)
let test_shrink_deterministic () =
  let profiles = Array.to_list (synthetic 11 5) in
  let warm = session_of Config.default profiles ~size_bound:10 in
  let a = shrink warm 4 and b = shrink warm 4 in
  if qs a <> qs b then Alcotest.fail "identical shrinks diverge";
  Array.iter
    (fun d ->
      if not (Dfs.is_valid ~limit:4 d) then
        Alcotest.fail "shrunk DFS exceeds the bound or breaks closure")
    (Session.dfss a);
  let cold =
    shrink
      (session_of
         (Config.with_incremental false Config.default)
         profiles ~size_bound:10)
      4
  in
  if qs a <> qs cold then Alcotest.fail "warm shrink differs from cold run";
  check Alcotest.int "dod matches cold run" (Session.dod cold) (Session.dod a);
  check ctx "context reused verbatim = cold rebuild" (Session.context cold)
    (Session.context a);
  (* growing back keeps everything valid too *)
  let regrown = shrink a 10 in
  Array.iter
    (fun d ->
      if not (Dfs.is_valid ~limit:10 d) then Alcotest.fail "regrow invalid")
    (Session.dfss regrown)

let test_session_deadline_intact () =
  let profiles = Array.to_list (synthetic 13 4) in
  let extra = (synthetic 14 3).(1) in
  let s = session_of (Config.with_domains 1 Config.default) profiles
      ~size_bound:6 in
  let expired = Deadline.of_ms 0. in
  Alcotest.check_raises "expired add raises" Deadline.Expired (fun () ->
      ignore (Session.add ~deadline:expired s extra));
  Alcotest.check_raises "expired remove raises" Deadline.Expired (fun () ->
      ignore (Session.remove ~deadline:expired s 0));
  Alcotest.check_raises "expired resize raises" Deadline.Expired (fun () ->
      ignore (Session.set_size_bound ~deadline:expired s 3));
  (* the session survives: its context still equals a fresh build and the
     same mutations succeed without a deadline *)
  let cfg = Session.config s in
  check ctx "context intact"
    (Dod.make_context ~params:cfg.Config.params ~weight:cfg.Config.weight
       ?domains:cfg.Config.domains (Session.profiles s))
    (Session.context s);
  let s' = Session.add s extra in
  check Alcotest.int "undeadlined add lands" 5
    (Array.length (Session.profiles s'))

(* ---- Random mutation sequences (property) ------------------------------- *)

type op = Add | Remove of int | Resize of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Add);
        (2, map (fun i -> Remove i) (int_range 0 31));
        (2, map (fun k -> Resize k) (int_range 3 12));
      ])

let show_op = function
  | Add -> "add"
  | Remove i -> Printf.sprintf "remove %d" i
  | Resize k -> Printf.sprintf "resize %d" k

let show_case (seed, alg, domains, ops) =
  Printf.sprintf "seed=%d alg=%d domains=%d [%s]" seed alg domains
    (String.concat "; " (List.map show_op ops))

let algorithms = [| Algorithm.Single_swap; Algorithm.Multi_swap;
                    Algorithm.Greedy |]

(* After every step of a random mutation sequence, the delta-maintained
   session must agree with (a) a fresh batch make_context over its
   current profiles and (b) a mirror session running the identical ops
   with incremental = false — context, DFSs and DoD all bit-identical.
   Expired deadlines are injected along the way; they must raise and
   leave both replicas untouched. *)
let prop_mutations_bit_identical =
  QCheck.Test.make
    ~name:"random mutation sequences: delta = fresh rebuild at every step"
    ~count:30
    QCheck.(
      make
        ~print:show_case
        Gen.(
          quad (int_range 0 1_000_000)
            (int_range 0 (Array.length algorithms - 1))
            (int_range 1 2)
            (list_size (int_range 1 10) op_gen)))
    (fun (seed, alg_i, domains, ops) ->
      let pool = synthetic seed 16 in
      let initial = Array.to_list (Array.sub pool 0 4) in
      let next = ref 4 in
      let config =
        Config.default
        |> Config.with_algorithm algorithms.(alg_i)
        |> Config.with_domains domains
      in
      let s = ref (session_of config initial ~size_bound:6) in
      let m =
        ref
          (session_of (Config.with_incremental false config) initial
             ~size_bound:6)
      in
      let agree step =
        let s = !s and m = !m in
        let cfg = Session.config s in
        let fresh =
          Dod.make_context ~params:cfg.Config.params
            ~weight:cfg.Config.weight ?domains:cfg.Config.domains
            (Session.profiles s)
        in
        if not (Dod.equal_context fresh (Session.context s)) then
          QCheck.Test.fail_reportf "step %d: context <> fresh rebuild" step;
        if not (Dod.equal_context (Session.context m) (Session.context s))
        then
          QCheck.Test.fail_reportf "step %d: context <> ablation mirror" step;
        if qs s <> qs m then
          QCheck.Test.fail_reportf "step %d: DFSs diverge from mirror" step;
        if Session.dod s <> Session.dod m then
          QCheck.Test.fail_reportf "step %d: DoD diverges from mirror" step
      in
      agree 0;
      List.iteri
        (fun step op ->
          let step = step + 1 in
          (match op with
          | Add when !next < Array.length pool ->
            let p = pool.(!next) in
            incr next;
            (* mid-sequence expiry: must raise, not corrupt *)
            (try
               ignore (Session.add ~deadline:(Deadline.of_ms 0.) !s p);
               QCheck.Test.fail_reportf "step %d: expired add did not raise"
                 step
             with Deadline.Expired -> ());
            s := Session.add !s p;
            m := Session.add !m p
          | Add -> () (* pool exhausted *)
          | Remove i ->
            let n = Array.length (Session.profiles !s) in
            if n > 2 then begin
              let i = i mod n in
              match (Session.remove !s i, Session.remove !m i) with
              | Ok a, Ok b ->
                s := a;
                m := b
              | (Error e, _ | _, Error e) ->
                QCheck.Test.fail_reportf "step %d: remove: %s" step
                  (Error.to_string e)
            end
          | Resize k -> (
            match
              (Session.set_size_bound !s k, Session.set_size_bound !m k)
            with
            | Ok a, Ok b ->
              s := a;
              m := b
            | (Error e, _ | _, Error e) ->
              QCheck.Test.fail_reportf "step %d: resize: %s" step
                (Error.to_string e)));
          agree step)
        ops;
      true)

(* ---- Random op batches through Session.apply (property) ----------------- *)

type bop = BAdd | BRemove of int | BResize of int | BReparams of int | BCancel

let bop_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return BAdd);
        (2, map (fun i -> BRemove i) (int_range 0 31));
        (2, map (fun k -> BResize k) (int_range 3 12));
        (2, map (fun t -> BReparams t) (int_range 0 2));
        (1, return BCancel);
      ])

let show_bop = function
  | BAdd -> "add"
  | BRemove i -> Printf.sprintf "remove %d" i
  | BResize k -> Printf.sprintf "resize %d" k
  | BReparams t -> Printf.sprintf "reparams %d" t
  | BCancel -> "cancel-pair"

let show_batch_case (seed, alg_i, batches) =
  Printf.sprintf "seed=%d alg=%d [%s]" seed alg_i
    (String.concat " | "
       (List.map
          (fun b -> String.concat "; " (List.map show_bop b))
          batches))

(* Random op *batches* — with cancelling add/remove pairs and interleaved
   reparams — through Session.apply: after every batch the coalesced
   context must equal a fresh make_context under the session's (possibly
   re-parametrized) config, and the whole session must stay in lockstep
   with a --no-incremental mirror applying the identical batches. A
   tripped deadline on a non-trivial batch must raise and leave both
   replicas untouched. *)
let prop_batches_bit_identical =
  QCheck.Test.make
    ~name:"random op batches: one coalesced delta = fresh rebuild" ~count:30
    QCheck.(
      make ~print:show_batch_case
        Gen.(
          triple (int_range 0 1_000_000)
            (int_range 0 (Array.length algorithms - 1))
            (list_size (int_range 1 4)
               (list_size (int_range 1 6) bop_gen))))
    (fun (seed, alg_i, batches) ->
      let pool = synthetic seed 24 in
      let next = ref 4 in
      let thresholds = [| 10.0; 25.0; 40.0 |] in
      let config =
        Config.default
        |> Config.with_algorithm algorithms.(alg_i)
        |> Config.with_domains 1
      in
      let initial = Array.to_list (Array.sub pool 0 4) in
      let s = ref (session_of config initial ~size_bound:6) in
      let m =
        ref
          (session_of (Config.with_incremental false config) initial
             ~size_bound:6)
      in
      let agree step =
        let s = !s and m = !m in
        let cfg = Session.config s in
        let fresh =
          Dod.make_context ~params:cfg.Config.params
            ~weight:cfg.Config.weight ?domains:cfg.Config.domains
            (Session.profiles s)
        in
        if not (Dod.equal_context fresh (Session.context s)) then
          QCheck.Test.fail_reportf "batch %d: context <> fresh rebuild" step;
        if not (Dod.equal_context (Session.context m) (Session.context s))
        then
          QCheck.Test.fail_reportf "batch %d: context <> ablation mirror"
            step;
        if qs s <> qs m then
          QCheck.Test.fail_reportf "batch %d: DFSs diverge from mirror" step;
        if Session.dod s <> Session.dod m then
          QCheck.Test.fail_reportf "batch %d: DoD diverges from mirror" step
      in
      agree 0;
      List.iteri
        (fun step batch ->
          let step = step + 1 in
          (* translate to session ops against the running arrangement *)
          let n = ref (Array.length (Session.profiles !s)) in
          let ops =
            List.concat_map
              (fun bop ->
                match bop with
                | BAdd when !next < Array.length pool ->
                  let p = pool.(!next) in
                  incr next;
                  incr n;
                  [ Session.Add p ]
                | BAdd -> []
                | BRemove i when !n > 2 ->
                  let i = i mod !n in
                  decr n;
                  [ Session.Remove i ]
                | BRemove _ -> []
                | BResize k -> [ Session.Set_size_bound k ]
                | BReparams 2 ->
                  [
                    Session.Reparams
                      {
                        params = None;
                        weight =
                          Some
                            (fun ft ->
                              1 + (String.length ft.Feature.attribute land 1));
                      };
                  ]
                | BReparams t ->
                  [
                    Session.Reparams
                      {
                        params =
                          Some
                            {
                              Dod.threshold_pct = thresholds.(t);
                              measure = Dod.Raw;
                            };
                        weight = None;
                      };
                  ]
                | BCancel when !next < Array.length pool ->
                  let p = pool.(!next) in
                  incr next;
                  [ Session.Add p; Session.Remove !n ]
                | BCancel -> [])
              batch
          in
          if ops <> [] then begin
            match (Session.apply !s ops, Session.apply !m ops) with
            | Ok a, Ok b ->
              (* a batch that did real work (the result is a new session,
                 not the net-no-op early return — note an add can still
                 cancel out if a later remove hits the added slot) must,
                 under an expired deadline, raise before any of that work
                 and leave the input session untouched *)
              if a != !s then
                (try
                   ignore (Session.apply ~deadline:(Deadline.of_ms 0.) !s ops);
                   QCheck.Test.fail_reportf
                     "batch %d: expired batch did not raise" step
                 with Deadline.Expired -> ());
              s := a;
              m := b
            | (Error e, _ | _, Error e) ->
              QCheck.Test.fail_reportf "batch %d: apply: %s" step
                (Error.to_string e)
          end;
          agree step)
        batches;
      true)

(* ---- Serve layer -------------------------------------------------------- *)

let request ?(meth = "GET") ?(headers = []) ?(body = "") target =
  let path, query = Http.split_target target in
  { Http.meth; target; path; query; headers; body }

let member_exn name body =
  match Json.of_string body with
  | Ok j -> (
    match Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "no field %S in %s" name body)
  | Error e -> Alcotest.failf "bad response JSON %s: %s" body e

let int_exn name body =
  match member_exn name body with
  | Json.Int i -> i
  | v -> Alcotest.failf "field %S is %s, not an int" name (Json.to_string v)

let compare_body k =
  Printf.sprintf
    {|{"dataset":"product-reviews","q":"gps","top":3,"size_bound":%d}|} k

type handler =
  ?meth:string -> ?headers:(string * string) list -> ?body:string -> string ->
  Http.response

let session_server ?incremental ?max_context_bytes ?session_ttl_s
    ?max_sessions ?state_dir () =
  let t =
    Server.create ~datasets:[ "product-reviews" ] ?incremental
      ?max_context_bytes ?session_ttl_s ?max_sessions ?state_dir ()
  in
  let handle ?meth ?headers ?body target =
    Server.handle t (request ?meth ?headers ?body target)
  in
  (t, handle)

let create_session (handle : handler) =
  let created = handle ~meth:"POST" ~body:(compare_body 6) "/session" in
  check Alcotest.int "created" 201 created.Http.status;
  match member_exn "id" created.Http.resp_body with
  | Json.String id -> id
  | _ -> Alcotest.fail "no session id"

(* One add + one remove + two resizes: the incremental server books two
   delta builds and only the creation-time full build; the ablation
   server rebuilds in full on every mutation. *)
let test_server_mutation_accounting () =
  let mutate (handle : handler) id =
    List.iter
      (fun (suffix, body) ->
        check Alcotest.int (suffix ^ " ok") 200
          (handle ~meth:"POST" ~body ("/session/" ^ id ^ "/" ^ suffix))
            .Http.status)
      [
        ("add", {|{"rank":4}|});
        ("remove", {|{"rank":2}|});
        ("size", {|{"size_bound":9}|});
        ("size", {|{"size_bound":5}|});
      ]
  in
  let _, handle = session_server () in
  mutate handle (create_session handle);
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "incremental: one full build (creation)" 1
    (int_exn "context_builds_full" metrics);
  check Alcotest.int "incremental: two delta builds" 2
    (int_exn "context_builds_delta" metrics);
  let live = int_exn "context_pair_tables_live" metrics in
  check Alcotest.int "pair tables live for 3 warm results" 3 live;
  let _, cold_handle = session_server ~incremental:false () in
  mutate cold_handle (create_session cold_handle);
  let cold_metrics = (cold_handle "/metrics").Http.resp_body in
  check Alcotest.int "ablation: every mutation a full build" 5
    (int_exn "context_builds_full" cold_metrics);
  check Alcotest.int "ablation: no delta builds" 0
    (int_exn "context_builds_delta" cold_metrics)

(* Sessions and mutation responses must be byte-identical between the
   incremental server and the --no-incremental ablation. *)
let test_server_ablation_identical () =
  let _, warm = session_server () in
  let _, cold = session_server ~incremental:false () in
  let drive (handle : handler) =
    let id = create_session handle in
    let bodies =
      List.map
        (fun (suffix, body) ->
          (handle ~meth:"POST" ~body ("/session/" ^ id ^ "/" ^ suffix))
            .Http.resp_body)
        [
          ("add", {|{"rank":4}|});
          ("size", {|{"size_bound":9}|});
          ("remove", {|{"rank":1}|});
          ("size", {|{"size_bound":4}|});
        ]
    in
    bodies @ [ (handle ("/session/" ^ id)).Http.resp_body ]
  in
  List.iteri
    (fun i (w, c) ->
      check Alcotest.string (Printf.sprintf "response %d identical" i) c w)
    (List.combine (drive warm) (drive cold))

(* POST /compare reuses one warm context across size bounds: the second
   request is a response-cache miss but a context-cache hit. *)
let test_compare_context_reuse () =
  let _, handle = session_server () in
  let r6 = handle ~meth:"POST" ~body:(compare_body 6) "/compare" in
  let r7 = handle ~meth:"POST" ~body:(compare_body 7) "/compare" in
  check Alcotest.int "first ok" 200 r6.Http.status;
  check Alcotest.int "second ok" 200 r7.Http.status;
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "one full build" 1 (int_exn "context_builds_full" metrics);
  check Alcotest.int "one reuse" 1 (int_exn "context_builds_reused" metrics);
  (* the reused-context response is identical to a cold server's, modulo
     the wall-clock elapsed_s field *)
  let timeless body =
    match Json.of_string body with
    | Ok (Json.Obj fields) ->
      Json.to_string
        (Json.Obj (List.filter (fun (k, _) -> k <> "elapsed_s") fields))
    | _ -> Alcotest.failf "bad compare body %s" body
  in
  let _, cold = session_server ~incremental:false () in
  let c6 = cold ~meth:"POST" ~body:(compare_body 6) "/compare" in
  let c7 = cold ~meth:"POST" ~body:(compare_body 7) "/compare" in
  check Alcotest.string "bound 6 identical" (timeless c6.Http.resp_body)
    (timeless r6.Http.resp_body);
  check Alcotest.string "bound 7 identical" (timeless c7.Http.resp_body)
    (timeless r7.Http.resp_body);
  let cold_metrics = (cold "/metrics").Http.resp_body in
  check Alcotest.int "ablation never reuses" 0
    (int_exn "context_builds_reused" cold_metrics)

(* A 1-byte context budget forces demotion of every session but the one
   just touched; a demoted session rewarms transparently on GET with a
   byte-identical body. *)
let test_server_demote_rewarm () =
  let _, handle = session_server ~max_context_bytes:1 () in
  let a = create_session handle in
  let before = (handle ("/session/" ^ a)).Http.resp_body in
  let b = create_session handle in
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "one demoted" 1 (int_exn "contexts_demoted" metrics);
  check Alcotest.int "one cold" 1 (int_exn "sessions_cold" metrics);
  let after = (handle ("/session/" ^ a)).Http.resp_body in
  check Alcotest.string "rewarmed GET byte-identical" before after;
  let metrics = (handle "/metrics").Http.resp_body in
  if int_exn "sessions_rewarmed" metrics < 1 then
    Alcotest.fail "rewarm not counted";
  (* both sessions still mutate fine after bouncing warm/cold *)
  List.iter
    (fun id ->
      check Alcotest.int "post-demotion add ok" 200
        (handle ~meth:"POST" ~body:{|{"rank":4}|}
           ("/session/" ^ id ^ "/add"))
          .Http.status)
    [ a; b ]

(* ---- Intern-table lifecycle --------------------------------------------- *)

let intern_stat name metrics =
  match member_exn "context_intern" metrics with
  | Json.Obj fields -> (
    match List.assoc_opt name fields with
    | Some (Json.Int i) -> i
    | _ -> Alcotest.failf "context_intern.%s missing in %s" name metrics)
  | v ->
    Alcotest.failf "context_intern is %s, not an object" (Json.to_string v)

(* k sessions over one corpus and parameter set pin one physical context:
   one interned entry, k refs, one full build, and a byte ledger that does
   not grow past the first session's. The ablation server interns
   nothing. *)
let test_server_intern_sharing () =
  let _, handle = session_server () in
  let _ = create_session handle in
  let bytes_one =
    int_exn "context_bytes_live" (handle "/metrics").Http.resp_body
  in
  for _ = 1 to 3 do
    ignore (create_session handle)
  done;
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "one interned context" 1
    (int_exn "contexts_interned" metrics);
  check Alcotest.int "one pinned entry" 1 (intern_stat "pinned" metrics);
  check Alcotest.int "four refs" 4 (intern_stat "refs" metrics);
  check Alcotest.int "one full build across four sessions" 1
    (int_exn "context_builds_full" metrics);
  check Alcotest.int "three interned reuses" 3
    (int_exn "context_builds_reused" metrics);
  check Alcotest.int "byte ledger holds one context" bytes_one
    (int_exn "context_bytes_live" metrics);
  let _, cold = session_server ~incremental:false () in
  ignore (create_session cold);
  check Alcotest.int "ablation interns nothing" 0
    (int_exn "contexts_interned" (cold "/metrics").Http.resp_body)

let without_id body =
  match Json.of_string body with
  | Ok (Json.Obj fields) ->
    Json.to_string
      (Json.Obj (List.filter (fun (k, _) -> k <> "id") fields))
  | _ -> Alcotest.failf "bad session body %s" body

(* DELETE drops one ref per holder; the entry unpins only when the last
   holder goes, stays as a reuse-cache entry, and a later identical
   create re-pins it without rebuilding. *)
let test_server_intern_release () =
  let _, handle = session_server () in
  let a = create_session handle in
  let b = create_session handle in
  let a_body = (handle ("/session/" ^ a)).Http.resp_body in
  check Alcotest.int "delete a ok" 200
    (handle ~meth:"DELETE" ("/session/" ^ a)).Http.status;
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "entry survives first delete" 1
    (int_exn "contexts_interned" metrics);
  check Alcotest.int "still pinned by b" 1 (intern_stat "pinned" metrics);
  check Alcotest.int "one ref left" 1 (intern_stat "refs" metrics);
  check Alcotest.int "delete b ok" 200
    (handle ~meth:"DELETE" ("/session/" ^ b)).Http.status;
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "unpinned after last holder drops" 0
    (intern_stat "pinned" metrics);
  check Alcotest.int "zero refs" 0 (intern_stat "refs" metrics);
  check Alcotest.int "kept as a reuse-cache entry" 1
    (int_exn "contexts_interned" metrics);
  let c = create_session handle in
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "recreate is a cache hit, not a rebuild" 1
    (int_exn "context_builds_full" metrics);
  check Alcotest.int "re-pinned" 1 (intern_stat "pinned" metrics);
  check Alcotest.int "one ref again" 1 (intern_stat "refs" metrics);
  check Alcotest.string "recreated session identical modulo id"
    (without_id a_body)
    (without_id (handle ("/session/" ^ c)).Http.resp_body)

(* LRU eviction and TTL expiry release the evicted/expired session's ref
   exactly like an explicit delete. *)
let test_server_intern_expire_evict () =
  let _, handle = session_server ~max_sessions:2 () in
  for _ = 1 to 3 do
    ignore (create_session handle)
  done;
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "one session evicted" 1
    (int_exn "sessions_evicted" metrics);
  check Alcotest.int "refs match surviving sessions" 2
    (intern_stat "refs" metrics);
  check Alcotest.int "one entry throughout" 1
    (int_exn "contexts_interned" metrics);
  let _, handle = session_server ~session_ttl_s:0.05 () in
  ignore (create_session handle);
  Unix.sleepf 0.1;
  ignore (create_session handle);
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "one session expired" 1
    (int_exn "sessions_expired" metrics);
  check Alcotest.int "expired session's ref released" 1
    (intern_stat "refs" metrics)

(* Demoting one of two holders releases only its ref — the entry stays
   pinned by the survivor, and the demoted session rewarms through the
   intern table (no rebuild) with a byte-identical body. *)
let test_server_intern_demote_rewarm () =
  let _, handle = session_server ~max_context_bytes:1 () in
  let a = create_session handle in
  let before = (handle ("/session/" ^ a)).Http.resp_body in
  let _b = create_session handle in
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "a demoted" 1 (int_exn "contexts_demoted" metrics);
  check Alcotest.int "entry still pinned by b" 1
    (intern_stat "pinned" metrics);
  check Alcotest.int "only b's ref remains" 1 (intern_stat "refs" metrics);
  check Alcotest.int "one full build" 1
    (int_exn "context_builds_full" metrics);
  let after = (handle ("/session/" ^ a)).Http.resp_body in
  check Alcotest.string "rewarm through the intern table byte-identical"
    before after;
  let metrics = (handle "/metrics").Http.resp_body in
  check Alcotest.int "rewarm did not rebuild" 1
    (int_exn "context_builds_full" metrics);
  if int_exn "sessions_rewarmed" metrics < 1 then
    Alcotest.fail "rewarm not counted";
  check Alcotest.int "entry stays pinned" 1 (intern_stat "pinned" metrics)

(* ---- Batched mutations and params patches over HTTP --------------------- *)

(* GET /session bodies modulo the "runs" diagnostic (a batch regenerates
   once where a sequential replay regenerates k times — everything else
   must agree byte for byte). *)
let without_runs body =
  match Json.of_string body with
  | Ok (Json.Obj fields) ->
    Json.to_string (Json.Obj (List.filter (fun (k, _) -> k <> "runs") fields))
  | _ -> Alcotest.failf "bad session body %s" body

let batch_ops_body =
  {|{"ops":[{"op":"add","rank":4},{"op":"size","size_bound":9},{"op":"remove","rank":2},{"op":"params","threshold_pct":25.0}]}|}

let test_server_apply_batch () =
  let _, warm = session_server () in
  let _, cold = session_server ~incremental:false () in
  let drive (handle : handler) =
    let id = create_session handle in
    let r =
      handle ~meth:"POST" ~body:batch_ops_body ("/session/" ^ id ^ "/apply")
    in
    check Alcotest.int "apply ok" 200 r.Http.status;
    (* the one response already reflects the whole batch *)
    check Alcotest.int "size applied" 9 (int_exn "size_bound" r.Http.resp_body);
    (match member_exn "ranks" r.Http.resp_body with
    | Json.List ranks ->
      check
        Alcotest.(list int)
        "ranks applied" [ 1; 3; 4 ]
        (List.filter_map (function Json.Int i -> Some i | _ -> None) ranks)
    | _ -> Alcotest.fail "no ranks");
    (* a singleton batch removing the newest result rides the
       tail-sharing fast path *)
    let r2 =
      handle ~meth:"POST" ~body:{|{"ops":[{"op":"remove","rank":4}]}|}
        ("/session/" ^ id ^ "/apply")
    in
    check Alcotest.int "singleton apply ok" 200 r2.Http.status;
    (handle ("/session/" ^ id)).Http.resp_body
  in
  let warm_body = drive warm and cold_body = drive cold in
  check Alcotest.string "warm batch = ablation batch byte-identical"
    cold_body warm_body;
  let metrics = (warm "/metrics").Http.resp_body in
  check Alcotest.int "ops_batched" 5 (int_exn "ops_batched" metrics);
  check Alcotest.int "one full build (creation)" 1
    (int_exn "context_builds_full" metrics);
  check Alcotest.int "one delta build per apply" 2
    (int_exn "context_builds_delta" metrics);
  check Alcotest.int "params op maintained by delta" 1
    (int_exn "reparams_delta" metrics);
  check Alcotest.int "tail-sharing remove counted" 1
    (int_exn "remove_tail_shared" metrics);
  let cold_metrics = (cold "/metrics").Http.resp_body in
  check Alcotest.int "ablation: applies rebuild in full" 3
    (int_exn "context_builds_full" cold_metrics);
  check Alcotest.int "ablation: no delta builds" 0
    (int_exn "context_builds_delta" cold_metrics);
  check Alcotest.int "ablation: no tail sharing" 0
    (int_exn "remove_tail_shared" cold_metrics);
  (* one batch = the same final state as the equivalent single-op replay,
     modulo the runs diagnostic *)
  let _, seq = session_server () in
  let id = create_session seq in
  List.iter
    (fun (meth, suffix, body) ->
      check Alcotest.int (suffix ^ " ok") 200
        (seq ~meth ~body ("/session/" ^ id ^ "/" ^ suffix)).Http.status)
    [
      ("POST", "add", {|{"rank":4}|});
      ("POST", "size", {|{"size_bound":9}|});
      ("POST", "remove", {|{"rank":2}|});
      ("PATCH", "params", {|{"threshold_pct":25.0}|});
      ("POST", "remove", {|{"rank":4}|});
    ];
  check Alcotest.string "batch = sequential replay (modulo runs)"
    (without_runs (seq ("/session/" ^ id)).Http.resp_body)
    (without_runs warm_body)

let test_server_apply_atomic () =
  let _, handle = session_server () in
  let id = create_session handle in
  let before = (handle ("/session/" ^ id)).Http.resp_body in
  let apply body = handle ~meth:"POST" ~body ("/session/" ^ id ^ "/apply") in
  let expect what status body =
    check Alcotest.int what status (apply body).Http.status;
    check Alcotest.string (what ^ ": session untouched") before
      ((handle ("/session/" ^ id)).Http.resp_body)
  in
  expect "empty ops" 400 {|{"ops":[]}|};
  expect "missing ops" 400 {|{"nope":1}|};
  expect "unknown op" 422 {|{"ops":[{"op":"frobnicate"}]}|};
  expect "op without rank" 400 {|{"ops":[{"op":"add"}]}|};
  expect "duplicate within batch" 422
    {|{"ops":[{"op":"add","rank":4},{"op":"add","rank":4}]}|};
  expect "already selected" 422 {|{"ops":[{"op":"add","rank":1}]}|};
  expect "not selected" 422 {|{"ops":[{"op":"remove","rank":9}]}|};
  (* a bad op deep in the batch fails the whole batch: the valid prefix
     must not land *)
  expect "late bad op keeps batch atomic" 422
    {|{"ops":[{"op":"add","rank":4},{"op":"remove","rank":1},{"op":"size","size_bound":0}]}|};
  (* injected deadline expiry: 504, nothing lands *)
  let r =
    handle ~meth:"POST"
      ~headers:[ ("x-deadline-ms", "0") ]
      ~body:batch_ops_body
      ("/session/" ^ id ^ "/apply")
  in
  check Alcotest.int "expired apply is 504" 504 r.Http.status;
  check Alcotest.string "expired apply: session untouched" before
    ((handle ("/session/" ^ id)).Http.resp_body)

let test_server_params_patch () =
  let _, warm = session_server () in
  let _, cold = session_server ~incremental:false () in
  let drive (handle : handler) =
    let id = create_session handle in
    let patch body =
      handle ~meth:"PATCH" ~body ("/session/" ^ id ^ "/params")
    in
    check Alcotest.int "threshold + weights patch ok" 200
      (patch {|{"threshold_pct":25.0,"weights":{"review":2}}|}).Http.status;
    (* boundary values: zero threshold and zero weight are legal *)
    check Alcotest.int "zero threshold ok" 200
      (patch {|{"threshold_pct":0}|}).Http.status;
    check Alcotest.int "zero weight ok" 200
      (patch {|{"weights":{"review":0}}|}).Http.status;
    check Alcotest.int "measure patch ok" 200
      (patch {|{"measure":"rate"}|}).Http.status;
    (handle ("/session/" ^ id)).Http.resp_body
  in
  let warm_body = drive warm and cold_body = drive cold in
  check Alcotest.string "patched warm = patched ablation byte-identical"
    cold_body warm_body;
  let metrics = (warm "/metrics").Http.resp_body in
  check Alcotest.int "four reparams deltas" 4
    (int_exn "reparams_delta" metrics);
  check Alcotest.int "reparams by delta, creation aside" 1
    (int_exn "context_builds_full" metrics);
  check Alcotest.int "one delta build per patch" 4
    (int_exn "context_builds_delta" metrics);
  let cold_metrics = (cold "/metrics").Http.resp_body in
  check Alcotest.int "ablation: patches rebuild in full" 5
    (int_exn "context_builds_full" cold_metrics);
  check Alcotest.int "ablation books no reparams delta" 0
    (int_exn "reparams_delta" cold_metrics)

let test_server_params_errors () =
  let _, handle = session_server () in
  let id = create_session handle in
  let before = (handle ("/session/" ^ id)).Http.resp_body in
  let expect what status body =
    check Alcotest.int what status
      (handle ~meth:"PATCH" ~body ("/session/" ^ id ^ "/params")).Http.status;
    check Alcotest.string (what ^ ": session untouched") before
      ((handle ("/session/" ^ id)).Http.resp_body)
  in
  expect "negative weight is 422" 422 {|{"weights":{"country":-1}}|};
  expect "unknown measure is 422" 422 {|{"measure":"bogus"}|};
  expect "negative threshold is 422" 422 {|{"threshold_pct":-5}|};
  expect "wrong threshold type is 400" 400 {|{"threshold_pct":"high"}|};
  expect "wrong weights type is 400" 400 {|{"weights":[1,2]}|};
  expect "empty patch is 400" 400 {|{}|};
  (* the uniform error envelope: {"error": {"code", "message"}} with a
     stable machine-readable code per error class *)
  let r =
    handle ~meth:"PATCH" ~body:{|{"measure":"bogus"}|}
      ("/session/" ^ id ^ "/params")
  in
  (match member_exn "error" r.Http.resp_body with
  | Json.Obj fields ->
    (match List.assoc_opt "code" fields with
    | Some (Json.String code) ->
      check Alcotest.string "unknown measure code" "unprocessable" code
    | _ -> Alcotest.fail "no error code");
    (match List.assoc_opt "message" fields with
    | Some (Json.String msg) ->
      check Alcotest.string "unknown measure message"
        "unknown measure \"bogus\"" msg
    | _ -> Alcotest.fail "no error message")
  | _ -> Alcotest.fail "no error envelope")

(* The new origins journal one record per request and replay on boot:
   a batch and a patch survive recovery with byte-identical session
   state. *)
let test_server_apply_durable () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xsact_incr_%d" (Unix.getpid ()))
  in
  let _ = Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let t, handle = session_server ~state_dir:dir () in
      Server.recover t;
      let id = create_session handle in
      check Alcotest.int "apply ok" 200
        (handle ~meth:"POST" ~body:batch_ops_body
           ("/session/" ^ id ^ "/apply"))
          .Http.status;
      check Alcotest.int "patch ok" 200
        (handle ~meth:"PATCH" ~body:{|{"threshold_pct":30.0}|}
           ("/session/" ^ id ^ "/params"))
          .Http.status;
      let before = (handle ("/session/" ^ id)).Http.resp_body in
      let t2, handle2 = session_server ~state_dir:dir () in
      Server.recover t2;
      check Alcotest.string "recovered session byte-identical (modulo runs)"
        (without_runs before)
        (without_runs (handle2 ("/session/" ^ id)).Http.resp_body))

let () =
  Alcotest.run "xsact_incremental"
    [
      ( "dod_delta",
        [
          Alcotest.test_case "add = fresh" `Quick test_add_equals_fresh;
          Alcotest.test_case "remove = fresh" `Quick test_remove_equals_fresh;
          Alcotest.test_case "add/remove roundtrip" `Quick
            test_add_remove_roundtrip;
          Alcotest.test_case "parallel delta identical" `Quick
            test_parallel_delta_identical;
          Alcotest.test_case "reparams = fresh" `Quick
            test_reparams_equals_fresh;
          Alcotest.test_case "delta errors" `Quick test_delta_errors;
          Alcotest.test_case "deadline mid-delta" `Quick
            test_deadline_mid_delta;
          Alcotest.test_case "approx_bytes sane" `Quick test_approx_bytes_sane;
          Alcotest.test_case "remove-last shares tails" `Quick
            test_remove_last_shares_tails;
          Alcotest.test_case "general remove shares suffix" `Quick
            test_remove_general_shares_suffix;
          Alcotest.test_case "apply batch = fresh" `Quick
            test_apply_batch_equals_fresh;
          Alcotest.test_case "apply cancelling pairs" `Quick
            test_apply_cancelling_pairs;
          Alcotest.test_case "apply errors" `Quick test_apply_errors;
          Alcotest.test_case "approx_bytes accounting" `Quick
            test_approx_bytes_accounting;
        ] );
      ( "session",
        [
          Alcotest.test_case "shrink deterministic vs cold run" `Quick
            test_shrink_deterministic;
          Alcotest.test_case "deadline leaves session intact" `Quick
            test_session_deadline_intact;
          qtest prop_mutations_bit_identical;
          qtest prop_batches_bit_identical;
        ] );
      ( "serve",
        [
          Alcotest.test_case "mutation accounting" `Quick
            test_server_mutation_accounting;
          Alcotest.test_case "ablation byte-identical" `Quick
            test_server_ablation_identical;
          Alcotest.test_case "compare context reuse" `Quick
            test_compare_context_reuse;
          Alcotest.test_case "demote and rewarm" `Quick
            test_server_demote_rewarm;
          Alcotest.test_case "intern sharing across sessions" `Quick
            test_server_intern_sharing;
          Alcotest.test_case "intern release on delete" `Quick
            test_server_intern_release;
          Alcotest.test_case "intern release on expire/evict" `Quick
            test_server_intern_expire_evict;
          Alcotest.test_case "intern demote keeps survivors pinned" `Quick
            test_server_intern_demote_rewarm;
          Alcotest.test_case "apply batch" `Quick test_server_apply_batch;
          Alcotest.test_case "apply atomic on errors" `Quick
            test_server_apply_atomic;
          Alcotest.test_case "params patch" `Quick test_server_params_patch;
          Alcotest.test_case "params patch errors" `Quick
            test_server_params_errors;
          Alcotest.test_case "apply and params durable" `Quick
            test_server_apply_durable;
        ] );
    ]
