(* The multicore DoD engine: Domain_pool behavior, and determinism of
   context construction and the algorithms across domain counts — the
   parallel and sequential paths must produce bit-identical links tables,
   DoD totals, and DFSs.

   The CI multicore job re-runs this suite with XSACT_TEST_DOMAINS=2, which
   adds that count to the compared set and to the end-to-end pipeline
   check. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

open Xsact_util

let env_domains =
  match Sys.getenv_opt "XSACT_TEST_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | _ -> 1)
  | None -> 1

(* Domain counts whose engines must agree, always including the
   environment-requested one. *)
let domain_counts = List.sort_uniq Int.compare [ 1; 2; 4; env_domains ]

(* ---- Domain_pool ------------------------------------------------------- *)

let test_pool_covers_range () =
  let pool = Domain_pool.get ~domains:4 in
  let n = 1000 in
  let hits = Array.make n 0 in
  Domain_pool.parallel_for pool ~n ~chunk:(fun lo hi ->
      for k = lo to hi - 1 do
        hits.(k) <- hits.(k) + 1
      done);
  Array.iteri
    (fun k c -> if c <> 1 then Alcotest.failf "index %d run %d times" k c)
    hits

let test_pool_empty_and_tiny () =
  let pool = Domain_pool.get ~domains:4 in
  Domain_pool.parallel_for pool ~n:0 ~chunk:(fun _ _ ->
      Alcotest.fail "chunk on empty range");
  (* n smaller than the chunk budget still covers exactly once *)
  let hits = Array.make 3 0 in
  Domain_pool.parallel_for pool ~n:3 ~chunk:(fun lo hi ->
      for k = lo to hi - 1 do
        hits.(k) <- hits.(k) + 1
      done);
  check (Alcotest.array Alcotest.int) "tiny range" [| 1; 1; 1 |] hits

let test_map_reduce_sum () =
  let pool = Domain_pool.get ~domains:3 in
  let n = 12345 in
  let sum lo hi =
    let s = ref 0 in
    for k = lo to hi - 1 do
      s := !s + k
    done;
    !s
  in
  check Alcotest.int "triangular sum"
    (n * (n - 1) / 2)
    (Domain_pool.map_reduce pool ~n ~map:sum ~reduce:( + ) ~init:0)

(* A non-commutative reduction still sees chunk results in ascending range
   order, whatever domain computed them. *)
let test_map_reduce_ordered () =
  let pool = Domain_pool.get ~domains:4 in
  let parts =
    Domain_pool.map_reduce pool ~n:997 ~map:(fun lo hi -> [ (lo, hi) ])
      ~reduce:( @ ) ~init:[]
  in
  let rec contiguous from = function
    | [] -> from = 997
    | (lo, hi) :: rest -> lo = from && hi > lo && contiguous hi rest
  in
  check Alcotest.bool "ascending contiguous cover" true (contiguous 0 parts)

let test_pool_exception_propagates () =
  let pool = Domain_pool.get ~domains:4 in
  Alcotest.check_raises "first chunk exception re-raised" Exit (fun () ->
      Domain_pool.parallel_for pool ~n:100 ~chunk:(fun lo _ ->
          if lo = 0 then raise Exit));
  (* the pool survives a failed job *)
  let total =
    Domain_pool.map_reduce pool ~n:100 ~map:(fun lo hi -> hi - lo)
      ~reduce:( + ) ~init:0
  in
  check Alcotest.int "pool alive after failure" 100 total

let test_pool_create_shutdown () =
  let pool = Domain_pool.create ~domains:2 in
  check Alcotest.int "domains" 2 (Domain_pool.domains pool);
  let hits = ref 0 in
  Domain_pool.parallel_for pool ~n:10 ~chunk:(fun lo hi ->
      ignore lo;
      ignore hi);
  ignore !hits;
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool (* idempotent *)

let test_pool_memoized () =
  check Alcotest.bool "get is memoized" true
    (Domain_pool.get ~domains:3 == Domain_pool.get ~domains:3);
  check Alcotest.int "size 1 pool is sequential" 1
    (Domain_pool.domains (Domain_pool.get ~domains:1))

(* Jobs racing in from several systhreads (the xsact-serve worker pool
   does exactly this) must serialize behind the submit mutex: every job
   covers its range exactly once, none corrupt each other. *)
let test_pool_concurrent_submitters () =
  let pool = Domain_pool.get ~domains:4 in
  let submitters = 6 and jobs_each = 5 and n = 512 in
  let bad = ref [] in
  let bad_mutex = Mutex.create () in
  let submitter s =
    for j = 0 to jobs_each - 1 do
      let hits = Array.make n 0 in
      Domain_pool.parallel_for pool ~n ~chunk:(fun lo hi ->
          for k = lo to hi - 1 do
            hits.(k) <- hits.(k) + 1
          done);
      Array.iteri
        (fun k c ->
          if c <> 1 then begin
            Mutex.lock bad_mutex;
            bad := (s, j, k, c) :: !bad;
            Mutex.unlock bad_mutex
          end)
        hits
    done
  in
  let threads = List.init submitters (fun s -> Thread.create submitter s) in
  List.iter Thread.join threads;
  match !bad with
  | [] -> ()
  | (s, j, k, c) :: _ ->
    Alcotest.failf "submitter %d job %d: index %d run %d times" s j k c

(* ---- Engine determinism across domain counts --------------------------- *)

let synthetic seed results =
  Xsact_workload.Workload.synthetic_profiles ~seed ~results ~entities:2
    ~types_per_entity:4 ~values_per_type:3 ~max_count:5

(* Canonical dump of every link list of the context, for structural
   comparison (Dod.link is all ints, so [=] is exact). *)
let links_dump c =
  let n = Dod.num_results c in
  List.init n (fun i ->
      let p = (Dod.results c).(i) in
      List.init (Result_profile.num_types p) (fun gi -> Dod.links c ~i ~gi))

let prop_context_deterministic =
  QCheck.Test.make ~name:"make_context identical for every domain count"
    ~count:60
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 2 8)))
    (fun (seed, results) ->
      let profiles = synthetic seed results in
      let reference = Dod.make_context ~domains:1 profiles in
      let ref_links = links_dump reference in
      let full = Topk.generate reference ~limit:1000 in
      List.for_all
        (fun domains ->
          let c = Dod.make_context ~domains profiles in
          links_dump c = ref_links
          && Dod.total c full = Dod.total reference full
          && List.for_all
               (fun (i, j) ->
                 Dod.upper_bound_pair c ~i ~j
                 = Dod.upper_bound_pair reference ~i ~j)
               (List.concat
                  (List.init results (fun i ->
                       List.init (results - i - 1) (fun k -> (i, i + k + 1))))))
        domain_counts)

let prop_algorithms_deterministic =
  QCheck.Test.make
    ~name:"single/multi-swap identical for every domain count and cache"
    ~count:40
    QCheck.(make Gen.(pair (int_range 0 1000000) (int_range 2 5)))
    (fun (seed, results) ->
      let profiles = synthetic seed results in
      let qs dfss = Array.to_list (Array.map Dfs.to_q_array dfss) in
      let reference = Dod.make_context ~domains:1 profiles in
      let single_ref = qs (Single_swap.generate reference ~limit:6) in
      let multi_ref = qs (Multi_swap.generate ~domains:1 reference ~limit:6) in
      let nocache_ref =
        qs (Multi_swap.generate ~cache:false ~domains:1 reference ~limit:6)
      in
      multi_ref = nocache_ref
      && List.for_all
           (fun domains ->
             let c = Dod.make_context ~domains profiles in
             qs (Single_swap.generate c ~limit:6) = single_ref
             && qs (Multi_swap.generate ~domains c ~limit:6) = multi_ref)
           domain_counts)

let prop_best_response_cache_exact =
  QCheck.Test.make
    ~name:"precomputed thresholds = per-call recomputation in best_response"
    ~count:60
    QCheck.(make Gen.(int_range 0 1000000))
    (fun seed ->
      let profiles = synthetic seed 3 in
      let c = Dod.make_context ~domains:1 profiles in
      let dfss = Topk.generate c ~limit:5 in
      let ok = ref true in
      for i = 0 to 2 do
        let thresholds = Multi_swap.compute_thresholds c dfss i in
        let with_cache =
          Multi_swap.best_response ~thresholds c ~limit:5 dfss i
        in
        let without = Multi_swap.best_response c ~limit:5 dfss i in
        if Dfs.to_q_array with_cache <> Dfs.to_q_array without then ok := false
      done;
      !ok)

(* End-to-end: the full pipeline comparison is identical under the
   environment-requested parallelism and the sequential engine. *)
let test_pipeline_domains_identical () =
  let profiles = synthetic 7 5 in
  let run domains =
    match
      Pipeline.compare_profiles
        ~config:(Config.with_domains domains Config.default)
        ~keywords:"synthetic" ~size_bound:6 profiles
    with
    | Ok c -> (c.Pipeline.dod, Array.map Dfs.to_q_array c.Pipeline.dfss)
    | Error e -> Alcotest.fail (Error.to_string e)
  in
  let dod1, dfss1 = run 1 in
  List.iter
    (fun domains ->
      let dod, dfss = run domains in
      check Alcotest.int
        (Printf.sprintf "dod at %d domains" domains)
        dod1 dod;
      if dfss <> dfss1 then
        Alcotest.failf "DFSs differ at %d domains" domains)
    (List.filter (fun d -> d > 1) (domain_counts @ [ 8 ]))

(* Regression for the PR-1 inconsistency: Session.create used to drop the
   domain count on the floor, so sessions always ran sequentially. Sessions
   must now honor Config.domains — and, like everything else in the engine,
   produce bit-identical DoD and DFSs for every domain count, through the
   warm-started operations too. *)
let test_session_domains_identical () =
  let profiles = Array.to_list (synthetic 11 4) in
  let extra = (synthetic 12 5).(4) in
  let run domains =
    let config = Config.(default |> with_domains domains) in
    match Session.create ~config ~size_bound:5 profiles with
    | Error e -> Alcotest.fail (Error.to_string e)
    | Ok s ->
      let s = Session.add s extra in
      let s =
        match Session.set_size_bound s 7 with
        | Ok s -> s
        | Error e -> Alcotest.fail (Error.to_string e)
      in
      check Alcotest.int
        (Printf.sprintf "config keeps %d domains" domains)
        domains
        (Option.value ~default:(-1) (Session.config s).Config.domains);
      (Session.dod s, Array.map Dfs.to_q_array (Session.dfss s))
  in
  let dod1, dfss1 = run 1 in
  List.iter
    (fun domains ->
      let dod, dfss = run domains in
      check Alcotest.int
        (Printf.sprintf "session dod at %d domains" domains)
        dod1 dod;
      if dfss <> dfss1 then
        Alcotest.failf "session DFSs differ at %d domains" domains)
    (List.filter (fun d -> d > 1) domain_counts)

let () =
  Alcotest.run "xsact_parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "covers range once" `Quick test_pool_covers_range;
          Alcotest.test_case "empty and tiny ranges" `Quick
            test_pool_empty_and_tiny;
          Alcotest.test_case "map_reduce sum" `Quick test_map_reduce_sum;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_ordered;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "create/shutdown" `Quick test_pool_create_shutdown;
          Alcotest.test_case "get memoized" `Quick test_pool_memoized;
          Alcotest.test_case "concurrent submitters" `Quick
            test_pool_concurrent_submitters;
        ] );
      ( "determinism",
        [
          qtest prop_context_deterministic;
          qtest prop_algorithms_deterministic;
          qtest prop_best_response_cache_exact;
          Alcotest.test_case "pipeline identical across domains" `Quick
            test_pipeline_domains_identical;
          Alcotest.test_case "session honors configured domains" `Quick
            test_session_domains_identical;
        ] );
    ]
