(* Tests for the XML substrate: parser, printer, round-trips, Dewey labels,
   path queries, statistics. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let parse_ok src =
  match Xml_parse.parse_string src with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "parse failed: %s" (Xml_parse.error_to_string e)

let parse_err src =
  match Xml_parse.parse_string src with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" src
  | Error e -> e

(* ---- Parser: success cases --------------------------------------------- *)

let test_parse_minimal () =
  let doc = parse_ok "<a/>" in
  check Alcotest.string "tag" "a" doc.Xml.root.tag;
  check Alcotest.int "no children" 0 (List.length doc.Xml.root.children)

let test_parse_nested_text () =
  let doc = parse_ok "<a><b>hello</b><b>world</b></a>" in
  let bs = Xml.children_named doc.Xml.root "b" in
  check Alcotest.int "two b children" 2 (List.length bs);
  check
    Alcotest.(list string)
    "text" [ "hello"; "world" ]
    (List.map Xml.text_content bs)

let test_parse_attributes () =
  let doc = parse_ok {|<a x="1" y='two &amp; three'><b z="&#65;"/></a>|} in
  check Alcotest.(option string) "x" (Some "1") (Xml.attr doc.Xml.root "x");
  check
    Alcotest.(option string)
    "entity in attr" (Some "two & three")
    (Xml.attr doc.Xml.root "y");
  let b = Option.get (Xml.child doc.Xml.root "b") in
  check Alcotest.(option string) "numeric entity" (Some "A") (Xml.attr b "z")

let test_parse_entities () =
  let doc = parse_ok "<a>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;</a>" in
  check Alcotest.string "decoded" "<tag> & \"x\" 'y'"
    (Xml.text_content doc.Xml.root)

let test_parse_numeric_entities () =
  let doc = parse_ok "<a>&#72;&#105;&#x21; caf&#xE9;</a>" in
  check Alcotest.string "decoded incl UTF-8" "Hi! caf\xC3\xA9"
    (Xml.text_content doc.Xml.root)

let test_parse_cdata () =
  let doc = parse_ok "<a><![CDATA[<raw> & text]]></a>" in
  check Alcotest.string "cdata content" "<raw> & text"
    (Xml.text_content doc.Xml.root)

let test_parse_comments_and_pi () =
  let doc =
    parse_ok
      "<?xml version=\"1.0\"?><!-- head --><a><!-- in --><?php echo ?><b/></a><!-- tail -->"
  in
  check Alcotest.int "one element child" 1
    (List.length (Xml.children_elements doc.Xml.root));
  let has_comment =
    List.exists
      (function Xml.Comment " in " -> true | _ -> false)
      doc.Xml.root.children
  in
  check Alcotest.bool "comment preserved" true has_comment

let test_parse_doctype () =
  let doc =
    parse_ok
      "<!DOCTYPE products [ <!ELEMENT product (#PCDATA)> ]><products><product/></products>"
  in
  check Alcotest.string "root after doctype" "products" doc.Xml.root.tag

let test_parse_whitespace_dropped () =
  let doc = parse_ok "<a>\n  <b/>\n  <c/>\n</a>" in
  check Alcotest.int "only element children" 2
    (List.length doc.Xml.root.children)

let test_parse_mixed_content_kept () =
  let doc = parse_ok "<a>pre<b/>post</a>" in
  check Alcotest.int "three children" 3 (List.length doc.Xml.root.children);
  check Alcotest.string "text content" "prepost" (Xml.text_content doc.Xml.root)

let test_parse_utf8_names () =
  let doc = parse_ok "<caf\xC3\xA9>x</caf\xC3\xA9>" in
  check Alcotest.string "utf8 tag" "caf\xC3\xA9" doc.Xml.root.tag

(* ---- Parser: failure injection ------------------------------------------ *)

let contains = Xsact_util.Textutil.contains_substring

let test_err_mismatched_tag () =
  let e = parse_err "<a><b></a></b>" in
  check Alcotest.bool "mentions mismatch" true
    (contains e.Xml_parse.message "mismatched")

let test_err_unterminated () =
  let e = parse_err "<a><b>text" in
  check Alcotest.bool "mentions unterminated" true
    (contains e.Xml_parse.message "unterminated")

let test_err_bad_entity () =
  let e = parse_err "<a>&bogus;</a>" in
  check Alcotest.bool "mentions entity" true
    (contains e.Xml_parse.message "entity")

let test_err_content_after_root () =
  let e = parse_err "<a/><b/>" in
  check Alcotest.bool "mentions trailing content" true
    (contains e.Xml_parse.message "after the root")

let test_err_duplicate_attr () =
  let e = parse_err {|<a x="1" x="2"/>|} in
  check Alcotest.bool "mentions duplicate" true
    (contains e.Xml_parse.message "duplicate")

let test_err_positions () =
  let e = parse_err "<a>\n  <b>\n</a>" in
  check Alcotest.int "line 3" 3 e.Xml_parse.position.line;
  let e2 = parse_err "" in
  check Alcotest.bool "empty input is an error" true
    (String.length e2.Xml_parse.message > 0)

let test_err_lt_in_attr () =
  let e = parse_err {|<a x="a<b"/>|} in
  check Alcotest.bool "rejects < in attribute" true
    (contains e.Xml_parse.message "<")

let test_parse_file_missing () =
  match Xml_parse.parse_file "/nonexistent/path.xml" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> check Alcotest.int "line 0 marker" 0 e.Xml_parse.position.line

(* A hostile 10k-deep document must be rejected by the depth cap, not
   crash anything downstream. *)
let nested depth =
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do Buffer.add_string buf "<d>" done;
  Buffer.add_string buf "x";
  for _ = 1 to depth do Buffer.add_string buf "</d>" done;
  Buffer.contents buf

let test_err_too_deep () =
  check Alcotest.int "cap is 512" 512 Xml_parse.default_max_depth;
  let e = parse_err (nested 10_000) in
  check Alcotest.bool "mentions depth" true
    (contains e.Xml_parse.message "nesting deeper than 512");
  (* exactly at the cap parses; one past fails *)
  (match Xml_parse.parse_string (nested Xml_parse.default_max_depth) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth = cap rejected: %s" e.Xml_parse.message);
  (match Xml_parse.parse_string (nested (Xml_parse.default_max_depth + 1)) with
  | Ok _ -> Alcotest.fail "depth = cap + 1 accepted"
  | Error _ -> ());
  (* the knob is honored *)
  (match Xml_parse.parse_string ~max_depth:3 (nested 4) with
  | Ok _ -> Alcotest.fail "max_depth:3 accepted depth 4"
  | Error e ->
    check Alcotest.bool "mentions custom cap" true
      (contains e.Xml_parse.message "deeper than 3"));
  match Xml_parse.parse_string ~max_depth:10_001 (nested 10_000) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "raised cap rejected: %s" e.Xml_parse.message

(* ---- Printer ------------------------------------------------------------- *)

let test_print_escaping () =
  let doc =
    Xml.document
      {
        Xml.tag = "a";
        attrs = [ ("k", "x\"<>&") ];
        children = [ Xml.text "<body> & stuff" ];
      }
  in
  let s = Xml_print.to_string ~decl:false doc in
  check Alcotest.string "escaped"
    "<a k=\"x&quot;&lt;&gt;&amp;\">&lt;body&gt; &amp; stuff</a>\n" s

let test_print_cdata_split () =
  let doc =
    Xml.document { Xml.tag = "a"; attrs = []; children = [ Xml.Cdata "x]]>y" ] }
  in
  let s = Xml_print.to_string ~decl:false doc in
  let reparsed = parse_ok s in
  check Alcotest.string "cdata round-trips even with ]]>" "x]]>y"
    (Xml.text_content reparsed.Xml.root)

let test_pretty_idempotent_parse () =
  let src = "<a><b>t</b><c><d/><d/></c></a>" in
  let doc = parse_ok src in
  let pretty = Xml_print.to_string_pretty doc in
  let doc2 = parse_ok pretty in
  check Alcotest.bool "pretty-printed tree parses equal" true
    (Xml.equal doc doc2)

(* ---- Random round-trip property ------------------------------------------ *)

let gen_name =
  QCheck.Gen.(
    let* first = oneofl [ 'a'; 'b'; 'c'; 'x'; 'y'; 'z' ] in
    let* rest =
      string_size
        ~gen:(oneofl [ 'a'; 'e'; 'r'; 't'; '0'; '9'; '-'; '.' ])
        (int_range 0 7)
    in
    return (String.make 1 first ^ rest))

let gen_text =
  QCheck.Gen.(
    string_size
      ~gen:(oneofl [ 'h'; 'i'; ' '; '&'; '<'; '>'; '"'; '\''; '9' ])
      (int_range 1 12))

let rec gen_node depth =
  QCheck.Gen.(
    if depth = 0 then map Xml.text gen_text
    else
      frequency
        [
          (3, map Xml.text gen_text);
          (1, map (fun s -> Xml.Cdata s) gen_text);
          (4, gen_element depth);
        ])

and gen_element depth =
  QCheck.Gen.(
    let* tag = gen_name in
    let* nattrs = int_range 0 2 in
    let rec distinct acc n =
      if n = 0 then return (List.rev acc)
      else
        let* name = gen_name in
        if List.mem name acc then distinct acc n
        else distinct (name :: acc) (n - 1)
    in
    let* attr_names = distinct [] nattrs in
    let* attrs =
      flatten_l
        (List.map (fun name -> map (fun v -> (name, v)) gen_text) attr_names)
    in
    let* nchildren = int_range 0 3 in
    let* children = list_size (return nchildren) (gen_node (depth - 1)) in
    return (Xml.Element { Xml.tag; attrs; children }))

let gen_document =
  QCheck.Gen.(
    map
      (fun e ->
        match e with
        | Xml.Element root -> Xml.document root
        | _ -> assert false)
      (gen_element 3))

let arbitrary_document =
  QCheck.make gen_document ~print:(fun d -> Xml_print.to_string d)

(* The parser reads CDATA back as-is but printing loses the Text/Cdata
   distinction boundary-wise: adjacent character runs become one text run,
   and whitespace-only runs between markup are dropped as formatting.
   Normalize both sides identically: unify Cdata into Text, merge adjacent
   text, then drop whitespace-only runs. *)
let rec normalize_children children =
  List.map
    (fun n ->
      match n with
      | Xml.Cdata s -> Xml.Text s
      | Xml.Element e -> Xml.Element (normalize_element e)
      | other -> other)
    children
  |> merge_adjacent
  |> List.filter (function
       | Xml.Text s -> String.trim s <> ""
       | _ -> true)

and merge_adjacent = function
  | Xml.Text a :: Xml.Text b :: rest ->
    merge_adjacent (Xml.Text (a ^ b) :: rest)
  | x :: rest -> x :: merge_adjacent rest
  | [] -> []

and normalize_element e =
  { e with Xml.children = normalize_children e.Xml.children }

let roundtrip_property print doc =
  match Xml_parse.parse_string (print doc) with
  | Error e -> QCheck.Test.fail_report (Xml_parse.error_to_string e)
  | Ok doc2 ->
    Xml.equal_node
      (Xml.Element (normalize_element doc.Xml.root))
      (Xml.Element (normalize_element doc2.Xml.root))

let prop_roundtrip_compact =
  QCheck.Test.make ~name:"print -> parse round-trip (compact)" ~count:300
    arbitrary_document
    (roundtrip_property (fun d -> Xml_print.to_string d))

let prop_roundtrip_pretty =
  QCheck.Test.make ~name:"print -> parse round-trip (pretty)" ~count:300
    arbitrary_document
    (roundtrip_property (fun d -> Xml_print.to_string_pretty d))

(* ---- Xml accessors -------------------------------------------------------- *)

let sample =
  parse_ok
    "<product><name>TomTom</name><reviews><review id=\"1\"><pro>compact</pro></review><review id=\"2\"/></reviews></product>"

let test_accessors () =
  let root = sample.Xml.root in
  check
    Alcotest.(option string)
    "child text" (Some "TomTom")
    (Option.map Xml.text_content (Xml.child root "name"));
  check Alcotest.int "count_elements" 6 (Xml.count_elements root);
  check Alcotest.int "depth" 4 (Xml.depth root);
  let reviews = Option.get (Xml.child root "reviews") in
  check Alcotest.int "children_named" 2
    (List.length (Xml.children_named reviews "review"));
  check Alcotest.string "text_content skips structure" "TomTomcompact"
    (Xml.text_content root);
  check Alcotest.string "immediate_text empty" "" (Xml.immediate_text root)

let test_equal_attr_order () =
  let a = Xml.elem ~attrs:[ ("x", "1"); ("y", "2") ] "t" [] in
  let b = Xml.elem ~attrs:[ ("y", "2"); ("x", "1") ] "t" [] in
  check Alcotest.bool "attr order ignored" true (Xml.equal_node a b);
  let c = Xml.elem ~attrs:[ ("x", "1") ] "t" [] in
  check Alcotest.bool "different attrs detected" false (Xml.equal_node a c)

(* ---- Dewey ----------------------------------------------------------------- *)

let test_dewey_basics () =
  let d = Dewey.of_list [ 0; 2; 1 ] in
  check Alcotest.string "to_string" "0.2.1" (Dewey.to_string d);
  check Alcotest.int "depth" 3 (Dewey.depth d);
  check Alcotest.(list int) "to_list" [ 0; 2; 1 ] (Dewey.to_list d);
  check Alcotest.string "root" "" (Dewey.to_string Dewey.root);
  check Alcotest.bool "parent" true
    (match Dewey.parent d with
    | Some p -> Dewey.to_string p = "0.2"
    | None -> false);
  check Alcotest.bool "root has no parent" true (Dewey.parent Dewey.root = None)

let test_dewey_order () =
  let a = Dewey.of_list [ 0; 1 ] in
  let b = Dewey.of_list [ 0; 1; 0 ] in
  let c = Dewey.of_list [ 0; 2 ] in
  check Alcotest.bool "prefix first" true (Dewey.compare a b < 0);
  check Alcotest.bool "sibling order" true (Dewey.compare b c < 0);
  check Alcotest.bool "ancestor" true (Dewey.is_ancestor a b);
  check Alcotest.bool "not ancestor of sibling" false (Dewey.is_ancestor a c);
  check Alcotest.bool "self not strict ancestor" false (Dewey.is_ancestor a a);
  check Alcotest.bool "ancestor-or-self" true (Dewey.is_ancestor_or_self a a)

let test_dewey_lca () =
  let a = Dewey.of_list [ 0; 1; 2 ] in
  let b = Dewey.of_list [ 0; 1; 3; 1 ] in
  check Alcotest.string "lca" "0.1" (Dewey.to_string (Dewey.lca a b));
  check Alcotest.string "lca with root" ""
    (Dewey.to_string (Dewey.lca a (Dewey.of_list [ 5 ])))

let gen_dewey = QCheck.Gen.(list_size (int_range 0 5) (int_range 0 4))

let prop_dewey_lca_sym =
  QCheck.Test.make ~name:"lca symmetric and ancestral" ~count:500
    QCheck.(make Gen.(pair gen_dewey gen_dewey))
    (fun (la, lb) ->
      let a = Dewey.of_list la and b = Dewey.of_list lb in
      let l = Dewey.lca a b in
      Dewey.equal l (Dewey.lca b a)
      && Dewey.is_ancestor_or_self l a
      && Dewey.is_ancestor_or_self l b)

let prop_dewey_total_order =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    QCheck.(make Gen.(pair gen_dewey gen_dewey))
    (fun (la, lb) ->
      let a = Dewey.of_list la and b = Dewey.of_list lb in
      let c1 = Dewey.compare a b and c2 = Dewey.compare b a in
      (c1 = 0) = (c2 = 0) && (c1 > 0) = (c2 < 0))

(* ---- Xml_path --------------------------------------------------------------- *)

let path_doc =
  parse_ok
    "<shop><brand><name>M</name><products><product><name>P1</name></product><product><name>P2</name></product></products></brand></shop>"

let test_path_select () =
  let root = path_doc.Xml.root in
  check Alcotest.int "child path" 1
    (List.length (Xml_path.select root "brand/name"));
  check Alcotest.int "descendant" 3 (List.length (Xml_path.select root "//name"));
  check
    Alcotest.(list string)
    "texts" [ "P1"; "P2" ]
    (Xml_path.texts root "brand/products/product/name");
  check Alcotest.int "wildcard" 1 (List.length (Xml_path.select root "*/name"));
  check Alcotest.bool "select_first" true
    (Xml_path.select_first root "//product" <> None);
  check Alcotest.int "no match" 0 (List.length (Xml_path.select root "plum"));
  Alcotest.check_raises "empty path rejected"
    (Invalid_argument "Xml_path.parse: empty path") (fun () ->
      ignore (Xml_path.parse ""))

let test_path_parse () =
  (match Xml_path.parse "a/b//c" with
  | [ Xml_path.Child "a"; Xml_path.Child "b"; Xml_path.Descendant "c" ] -> ()
  | _ -> Alcotest.fail "unexpected parse");
  match Xml_path.parse "//x" with
  | [ Xml_path.Descendant "x" ] -> ()
  | _ -> Alcotest.fail "leading // should be descendant"

(* ---- Xml_sax -------------------------------------------------------------------- *)

let test_sax_events () =
  let src = "<?xml version=\"1.0\"?><a x=\"1\"><b>hi</b><!--c--><![CDATA[d]]></a>" in
  match Xml_sax.events src with
  | Error e -> Alcotest.failf "sax failed: %s" (Xml_sax.error_to_string e)
  | Ok events ->
    let expected =
      [
        Xml_sax.Pi ("xml", "version=\"1.0\"");
        Xml_sax.Start_element ("a", [ ("x", "1") ]);
        Xml_sax.Start_element ("b", []);
        Xml_sax.Text "hi";
        Xml_sax.End_element "b";
        Xml_sax.Comment "c";
        Xml_sax.Cdata "d";
        Xml_sax.End_element "a";
      ]
    in
    check Alcotest.bool "event stream" true (events = expected)

let test_sax_self_closing () =
  match Xml_sax.events "<a><b/></a>" with
  | Ok
      [
        Xml_sax.Start_element ("a", []);
        Xml_sax.Start_element ("b", []);
        Xml_sax.End_element "b";
        Xml_sax.End_element "a";
      ] ->
    ()
  | Ok _ -> Alcotest.fail "unexpected events"
  | Error e -> Alcotest.failf "sax failed: %s" (Xml_sax.error_to_string e)

let test_sax_errors () =
  let err src =
    match Xml_sax.events src with
    | Ok _ -> Alcotest.failf "expected sax error for %S" src
    | Error e -> e.Xml_sax.message
  in
  check Alcotest.bool "mismatch" true (contains (err "<a></b>") "mismatched");
  check Alcotest.bool "unmatched close" true
    (contains (err "<a/></b>") "unmatched");
  check Alcotest.bool "trailing" true (contains (err "<a/><b/>") "after the root");
  check Alcotest.bool "text before root" true
    (contains (err "hi<a/>") "before the root");
  check Alcotest.bool "no root" true (contains (err "  ") "no root");
  check Alcotest.bool "unterminated" true
    (contains (err "<a><b>") "unterminated")

let test_sax_fold_counts () =
  let count =
    Xml_sax.fold "<a><b/><b/><b/></a>" ~init:0 ~f:(fun acc e ->
        match e with Xml_sax.Start_element ("b", _) -> acc + 1 | _ -> acc)
  in
  check Alcotest.(result int reject) "fold counts" (Ok 3) count

(* Fuzz: arbitrary bytes must yield Ok or a located Error — never an
   escaping exception. Biased toward markup-ish characters so the parser's
   deeper states get exercised. *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser is total on arbitrary bytes" ~count:1000
    QCheck.(
      string_gen_of_size (Gen.int_range 0 60)
        (Gen.oneofl
           [ '<'; '>'; '/'; '!'; '?'; '&'; ';'; '"'; '\''; '['; ']'; '-';
             'a'; 'b'; ' '; '\n'; '='; '\xc3'; '\xa9'; '\x00' ]))
    (fun s ->
      (match Xml_parse.parse_string s with Ok _ | Error _ -> true)
      && (match Xml_sax.events s with Ok _ | Error _ -> true))

let prop_streaming_stats_agree =
  QCheck.Test.make ~name:"streaming stats = DOM stats" ~count:300
    arbitrary_document (fun doc ->
      let src = Xml_print.to_string doc in
      match (Xml_parse.parse_string src, Xml_stats.of_string_streaming src) with
      | Ok dom, Ok streamed -> Xml_stats.of_document dom = streamed
      | _ -> false)

let test_streaming_stats_pretty () =
  (* The same document, compact and pretty-printed, yields identical stats
     through the streaming path (whitespace policy applies). *)
  let doc =
    parse_ok "<a><b>t</b><c><d/><d x=\"1\"/></c><!--note--></a>"
  in
  let compact = Xml_stats.of_string_streaming (Xml_print.to_string doc) in
  let pretty = Xml_stats.of_string_streaming (Xml_print.to_string_pretty doc) in
  match (compact, pretty) with
  | Ok a, Ok b -> check Alcotest.bool "identical" true (a = b)
  | _ -> Alcotest.fail "streaming failed"

(* ---- Xml_stats ----------------------------------------------------------------- *)

let test_stats () =
  let stats = Xml_stats.of_document path_doc in
  check Alcotest.int "elements" 8 stats.Xml_stats.elements;
  check Alcotest.int "distinct tags" 5 stats.Xml_stats.distinct_tags;
  check Alcotest.int "max depth" 5 stats.Xml_stats.max_depth;
  check Alcotest.int "text nodes" 3 stats.Xml_stats.text_nodes;
  let hist = Xml_stats.tag_histogram path_doc.Xml.root in
  check Alcotest.(option int) "name x3" (Some 3) (List.assoc_opt "name" hist);
  match hist with
  | (first, 3) :: _ -> check Alcotest.string "most frequent first" "name" first
  | _ -> Alcotest.fail "histogram head"

let () =
  Alcotest.run "xsact_xml"
    [
      ( "parse-ok",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "nested text" `Quick test_parse_nested_text;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "numeric entities" `Quick
            test_parse_numeric_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "comments/pi" `Quick test_parse_comments_and_pi;
          Alcotest.test_case "doctype" `Quick test_parse_doctype;
          Alcotest.test_case "whitespace dropped" `Quick
            test_parse_whitespace_dropped;
          Alcotest.test_case "mixed content" `Quick test_parse_mixed_content_kept;
          Alcotest.test_case "utf8 names" `Quick test_parse_utf8_names;
        ] );
      ( "parse-errors",
        [
          Alcotest.test_case "mismatched tag" `Quick test_err_mismatched_tag;
          Alcotest.test_case "unterminated" `Quick test_err_unterminated;
          Alcotest.test_case "bad entity" `Quick test_err_bad_entity;
          Alcotest.test_case "trailing content" `Quick
            test_err_content_after_root;
          Alcotest.test_case "duplicate attr" `Quick test_err_duplicate_attr;
          Alcotest.test_case "positions" `Quick test_err_positions;
          Alcotest.test_case "< in attr" `Quick test_err_lt_in_attr;
          Alcotest.test_case "missing file" `Quick test_parse_file_missing;
          Alcotest.test_case "nesting depth cap" `Quick test_err_too_deep;
        ] );
      ( "print",
        [
          Alcotest.test_case "escaping" `Quick test_print_escaping;
          Alcotest.test_case "cdata ]]> split" `Quick test_print_cdata_split;
          Alcotest.test_case "pretty reparses equal" `Quick
            test_pretty_idempotent_parse;
          qtest prop_roundtrip_compact;
          qtest prop_roundtrip_pretty;
        ] );
      ( "model",
        [
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "equality" `Quick test_equal_attr_order;
        ] );
      ( "dewey",
        [
          Alcotest.test_case "basics" `Quick test_dewey_basics;
          Alcotest.test_case "order" `Quick test_dewey_order;
          Alcotest.test_case "lca" `Quick test_dewey_lca;
          qtest prop_dewey_lca_sym;
          qtest prop_dewey_total_order;
        ] );
      ( "path",
        [
          Alcotest.test_case "select" `Quick test_path_select;
          Alcotest.test_case "parse" `Quick test_path_parse;
        ] );
      ( "sax",
        [
          Alcotest.test_case "event stream" `Quick test_sax_events;
          Alcotest.test_case "self-closing" `Quick test_sax_self_closing;
          Alcotest.test_case "errors" `Quick test_sax_errors;
          Alcotest.test_case "fold" `Quick test_sax_fold_counts;
          qtest prop_parser_total;
          qtest prop_streaming_stats_agree;
          Alcotest.test_case "streaming stats pretty" `Quick
            test_streaming_stats_pretty;
        ] );
      ("stats", [ Alcotest.test_case "counts" `Quick test_stats ]);
    ]
